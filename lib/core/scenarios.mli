(** Experiment scenario drivers.

    One function per experiment family (see DESIGN.md's experiment
    index); the benchmark harness and the runnable examples both call
    these, so the numbers printed by `bench/main.exe` are reproducible
    from the CLI as well. Every driver asserts replica agreement before
    returning — a safety violation aborts the experiment loudly. *)

type latency_result = {
  hist : Stats.Histogram.t;  (** confirmed-update latencies, ms *)
  series : Stats.Timeseries.t;  (** (confirm time, latency ms) *)
  submitted : int;
  confirmed : int;
  max_view : int;  (** highest view reached by any correct replica *)
  duration_us : int;
}

(** [result_of sys ~duration_us] snapshots the metrics of a system. *)
val result_of : System.t -> duration_us:int -> latency_result

(** [fault_free ?config ~duration_us ()] — experiments E2/E3: the
    wide-area deployment with no faults. *)
val fault_free :
  ?config:System.config -> duration_us:int -> unit -> System.t * latency_result

(** [leader_attack ~protocol ~delay_us ~attack_from_us ~duration_us ()] —
    experiment E4: the leader delays every proposal by [delay_us]
    starting at [attack_from_us]. Under Prime the leader is suspected
    and rotated; under PBFT it keeps the role while latency balloons.
    [tweak] (default identity) post-processes the scenario config —
    e.g. to switch telemetry on. *)
val leader_attack :
  ?tweak:(System.config -> System.config) ->
  protocol:System.protocol ->
  delay_us:int ->
  attack_from_us:int ->
  duration_us:int ->
  unit ->
  System.t * latency_result

(** [proactive_recovery ~rotation_period_us ~recovery_duration_us
     ~duration_us ()] — experiment E5: staggered rejuvenation while the
    polling workload runs. Also returns the recovery events
    [(time_us, phase, replica)]. *)
val proactive_recovery :
  rotation_period_us:int ->
  recovery_duration_us:int ->
  duration_us:int ->
  unit ->
  System.t * latency_result * (int * [ `Begin | `Complete ] * int) list

(** [link_degradation ~mode ~factor ~attack_from_us ~duration_us ()] —
    experiment E6: at [attack_from_us] every inter-control-center WAN
    link's latency is inflated by [factor] (an undetected delay attack:
    links stay "up" so shortest-path routing keeps using them).
    Compare [mode = Shortest] (suffers) against [Redundant 2] / [Flood]
    (first copy wins over clean paths). [tweak] (default identity)
    post-processes the scenario config — e.g. to switch telemetry on. *)
val link_degradation :
  ?tweak:(System.config -> System.config) ->
  mode:Overlay.Net.mode ->
  factor:float ->
  attack_from_us:int ->
  duration_us:int ->
  unit ->
  System.t * latency_result

(** [packet_loss ~mode ~loss ~duration_us ()] — experiment E6b: every
    WAN link between replica sites drops each transmission with
    probability [loss] for the whole run; the overlay's hop-by-hop ARQ
    retransmits. Measures how loss converts into latency per
    dissemination mode. *)
val packet_loss :
  mode:Overlay.Net.mode ->
  loss:float ->
  duration_us:int ->
  unit ->
  System.t * latency_result

(** [site_failure ~site ~fail_at_us ~restore_at_us ~duration_us ()] —
    experiment E7: a whole control center is disconnected, then
    restored. Returns per-second mean latency buckets for the timeline
    figure. *)
val site_failure :
  site:int ->
  fail_at_us:int ->
  restore_at_us:int option ->
  duration_us:int ->
  unit ->
  System.t * latency_result

(** [throughput ~substations ~poll_interval_us ~duration_us ()] —
    experiment E8: one point of the scaling sweep; returns the offered
    and confirmed rates plus the latency distribution. [max_batch]
    (default 1 = unbatched) and [batch_delay_us] (default 10 ms) set
    the end-to-end batching policy for the batch-size sweep. [tweak]
    (default identity) post-processes the scenario config — e.g. to
    constrain the WAN budget for the E8 batch sweep. *)
val throughput :
  ?tweak:(System.config -> System.config) ->
  ?max_batch:int ->
  ?batch_delay_us:int ->
  substations:int ->
  poll_interval_us:int ->
  duration_us:int ->
  unit ->
  System.t * latency_result

(** One epoch-activity sample: per epoch, how many of its replicas are
    live right now and what its ordering quorum is. The epoch-safety
    oracle asserts at most one epoch is ever quorate. *)
type activity_sample = {
  at_us : int;
  per_epoch : (int * int * int) list;  (** (epoch, live, quorum_size) *)
}

type reconfig_result = {
  base : latency_result;
  cutovers : (int * int * int) list;
      (** (epoch, boundary_exec, time_us), oldest first *)
  final_epoch : int;
  final_n : int;
  stale_frames : int;  (** cross-epoch protocol frames dropped *)
  violation : string option;  (** latched epoch-safety violation, if any *)
  max_confirm_gap_us : int;
      (** longest confirmation silence from the first fault to the end
          of the run — the bounded-downtime metric *)
  activity : activity_sample list;
}

(** [reconfiguration ~duration_us ()] — experiment E11: online
    reconfiguration through the ordered stream. The active control
    center is destroyed at t=10s; a failover reconfiguration (promote
    backup, remove dead site) cuts over to epoch 1; the healed site is
    re-admitted as epoch 2; a pre-provisioned standby data center is
    admitted as epoch 3, growing n from 6 to 8 (k: 1 -> 2). Use
    [duration_us >= 50s] for all four phases. [tweak] post-processes
    the config (the standby site is added before tweaking). *)
val reconfiguration :
  ?tweak:(System.config -> System.config) ->
  duration_us:int ->
  unit ->
  System.t * reconfig_result

type campaign_result = {
  max_simultaneous_compromised : int;
  total_compromises : int;
  exploits_developed : int;
  time_above_f_us : int;
      (** virtual time with more than f replicas compromised *)
  final_compromised : int;
  mean_held_us : int;
      (** mean time a compromise survived before being cleansed (0 when
          none were cleansed) *)
}

(** [intrusion_campaign ?reactive_on ~diversity_on ~recovery_on
     ~duration_us ()] — experiment E9 and its ablations A3/A4. The
    attacker develops exploits per variant and compromises matching
    replicas; proactive recovery (when on) rejuvenates with fresh
    variants; [reactive_on] (default false, requires recovery) adds
    accusation-based reactive recovery, which cleanses silent
    compromised replicas within seconds instead of waiting for their
    rotation slot. *)
val intrusion_campaign :
  ?reactive_on:bool ->
  diversity_on:bool ->
  recovery_on:bool ->
  duration_us:int ->
  unit ->
  System.t * campaign_result

(** [fleet ~concentrators ~devices ~duration_us ()] — experiment E12:
    the register-mapped device fleet ({!Field}) behind [concentrators]
    data concentrators, with a reduced legacy workload (2 substations,
    1 HMI) so the ordered stream is dominated by fleet aggregates.
    Batching is on ([max_batch = 8]) — hierarchical aggregation plus
    batching is what keeps BFT load independent of fleet size. [tweak]
    (default identity) post-processes the config — e.g. to change the
    seed or scan cadence. *)
val fleet :
  ?tweak:(System.config -> System.config) ->
  concentrators:int ->
  devices:int ->
  duration_us:int ->
  unit ->
  System.t * latency_result

(** The two attacks experiment E13 replays without telling the system
    which one is running. *)
type adaptive_attack =
  | Leader_slowdown of int
      (** the E4 attack: the leader delays every proposal by this many
          microseconds *)
  | Wan_delay of float
      (** the E6 attack: primary inter-site WAN latency inflated by
          this factor (links stay "up") *)

type adaptive_result = {
  base : latency_result;
  post_attack_p99_ms : float;
      (** p99 of confirmations at or after [attack_from_us]; [infinity]
          when nothing confirmed after the attack began *)
  knob_applied : int;  (** knob requests applied (whole run) *)
  knob_rejected : int;  (** knob requests rejected (whole run) *)
  journal_consistent : bool;
      (** {!Control.Knobs.reconcile}: journal matches the counters,
          i.e. no knob changed outside the validated path *)
}

(** [post_attack_p99 series ~from_us] is the p99 latency (ms) of the
    confirmations at or after [from_us], or [infinity] when there are
    none — the comparison metric of E13 (also usable over a later
    window to measure the controller's converged steady state). *)
val post_attack_p99 : Stats.Timeseries.t -> from_us:int -> float

(** [adaptive ~attack ~attack_from_us ~duration_us ()] — experiment
    E13: one arm of the adaptive-resilience comparison. With
    [controller] (default [true]) the two-level feedback controller
    is live and must converge near the best static configuration's
    post-attack p99 without knowing which attack is running; with
    [controller = false] and a [mode] (default [Shortest]) this is a
    static baseline arm. Telemetry is always on so the arms differ
    only in the controller. *)
val adaptive :
  ?tweak:(System.config -> System.config) ->
  ?controller:bool ->
  ?mode:Overlay.Net.mode ->
  attack:adaptive_attack ->
  attack_from_us:int ->
  duration_us:int ->
  unit ->
  System.t * adaptive_result
