(* Direct frame-size computation, mirroring the writers in [Codec] and
   [Message] field by field. Each function must satisfy the law

     size v = String.length (encode v)

   (enforced by qcheck in test/test_wire.ml for every constructor), so
   the overlay's byte accounting can run on the per-message fast path
   without allocating and encoding a frame just to learn its length. *)

let u8 = 1
let u16 = 2
let u32 = 4
let i64 = 8
let digest = 8
let bool = u8

let bytes s = u32 + String.length s
let list f l = List.fold_left (fun acc v -> acc + f v) u16 l

let update (u : Bft.Update.t) =
  u16 + u32 + i64 + bytes u.Bft.Update.operation

let vector (v : Prime.Matrix.vector) = u16 + (u32 * Array.length v)

let matrix (m : Prime.Matrix.t) =
  Array.fold_left (fun acc row -> acc + vector row) u16 m

let prime_prepared (e : Prime.Msg.prepared_entry) =
  u32 + u32 + matrix e.Prime.Msg.entry_matrix

let prime (m : Prime.Msg.t) =
  u8
  +
  match m with
  | Prime.Msg.Po_request { update = u; _ } -> u16 + u32 + update u
  | Prime.Msg.Po_aru { vector = v } -> vector v
  | Prime.Msg.Preprepare { matrix = m; _ } -> u32 + u32 + matrix m
  | Prime.Msg.Prepare _ -> u32 + u32 + digest
  | Prime.Msg.Commit _ -> u32 + u32 + digest
  | Prime.Msg.Suspect _ -> u32
  | Prime.Msg.Viewchange { prepared; _ } ->
    u32 + u32 + list prime_prepared prepared
  | Prime.Msg.Newview { proposals; _ } ->
    u32 + list (fun (_, m) -> u32 + matrix m) proposals
  | Prime.Msg.Recon_request _ -> u16 + u32
  | Prime.Msg.Recon_reply { update = u; _ } -> u16 + u32 + update u
  | Prime.Msg.Slot_request _ -> u32
  | Prime.Msg.Slot_reply { matrix = m; _ } -> u32 + matrix m
  | Prime.Msg.Checkpoint _ -> u32 + digest
  | Prime.Msg.Po_batch { updates; _ } -> u16 + u32 + list update updates

let pbft_proposal (p : Pbft.Msg.proposal) =
  u32 + list update p.Pbft.Msg.updates

let pbft_prepared (e : Pbft.Msg.prepared_entry) =
  u32 + u32 + list update e.Pbft.Msg.entry_updates

let pbft (m : Pbft.Msg.t) =
  u8
  +
  match m with
  | Pbft.Msg.Request { update = u; _ } -> update u + bool
  | Pbft.Msg.Preprepare { proposal; _ } -> u32 + pbft_proposal proposal
  | Pbft.Msg.Prepare _ -> u32 + u32 + digest
  | Pbft.Msg.Commit _ -> u32 + u32 + digest
  | Pbft.Msg.Checkpoint _ -> u32 + digest
  | Pbft.Msg.Viewchange { prepared; _ } ->
    u32 + u32 + list pbft_prepared prepared
  | Pbft.Msg.Newview { proposals; _ } ->
    u32 + u32 + list pbft_proposal proposals

let reply (t : Scada.Reply.t) =
  u16 + u16 + u32 + u32 + digest (* replica, update key, exec index, digest *)
  + u16 + digest + digest (* threshold share representation *)
  +
  match t.Scada.Reply.body with
  | Scada.Reply.Ack -> u8
  | Scada.Reply.Command { frame; _ } -> u8 + u16 + bytes frame

let chunk (c : Recovery.State_transfer.chunk) =
  u32 + u32 + u32 + digest + bytes c.Recovery.State_transfer.data

let field_advert (_ : Scada.Field_frame.advert) =
  u16 + u32 + u8 + u8 + u8 + u8 + digest

let field_event (_ : Scada.Field_frame.event) = u8 + u16 + u16

let field_report (rep : Scada.Field_frame.report) =
  u16 + u32 + u32 + list field_event rep.Scada.Field_frame.events

let site (s : Member.Cert.site) =
  u16 + u8 + list (fun _ -> u16) s.Member.Cert.members

let cert (c : Member.Cert.t) =
  u32 + u16 + u16 + u32 + list site c.Member.Cert.sites
  + list (fun _ -> u16) c.Member.Cert.signers
  + digest

let rec message (m : Message.t) =
  u8
  +
  match m with
  | Message.Prime_msg (_, p) -> u16 + prime p
  | Message.Pbft_msg (_, p) -> u16 + pbft p
  | Message.Client_update u -> update u
  | Message.Replica_reply r -> reply r
  | Message.Transfer_chunk c -> chunk c
  | Message.Client_batch us -> list update us
  | Message.Reply_batch rs -> list reply rs
  | Message.Epoch_frame (_, inner) -> u32 + message inner
  | Message.Cert_frame c -> cert c
  | Message.Field_advert a -> field_advert a
  | Message.Field_report rep -> field_report rep
