type t =
  | Prime_msg of Bft.Types.replica * Prime.Msg.t
  | Pbft_msg of Bft.Types.replica * Pbft.Msg.t
  | Client_update of Bft.Update.t
  | Replica_reply of Scada.Reply.t
  | Transfer_chunk of Recovery.State_transfer.chunk
  | Client_batch of Bft.Update.t list
  | Reply_batch of Scada.Reply.t list
  | Epoch_frame of int * t
      (* membership-epoch envelope: protocol frames from epoch > 0 are
         wrapped so receivers can reject stale-epoch traffic before it
         touches protocol state; epoch-0 frames travel bare, keeping
         the genesis wire trajectory bit-identical *)
  | Cert_frame of Member.Cert.t
      (* membership certificate announcement at a cutover *)
  | Field_advert of Scada.Field_frame.advert
      (* register-map capability advertisement a fleet device sends
         when its concentrator session links up (and on every relink) *)
  | Field_report of Scada.Field_frame.report
      (* report-by-exception event batch on the device-to-concentrator
         field link *)

(* Kinds form a dense index so per-kind traffic accounting can live in
   a preallocated counter array instead of a hashtable keyed by the
   label strings. New kinds are appended so existing indices (and the
   pinned per-kind byte ledgers built on them) stay stable. *)
let kind_count = 29

let kind_names =
  [|
    "prime/po_request"; "prime/po_aru"; "prime/preprepare"; "prime/prepare";
    "prime/commit"; "prime/suspect"; "prime/viewchange"; "prime/newview";
    "prime/recon_request"; "prime/recon_reply"; "prime/slot_request";
    "prime/slot_reply"; "prime/checkpoint"; "pbft/request"; "pbft/preprepare";
    "pbft/prepare"; "pbft/commit"; "pbft/checkpoint"; "pbft/viewchange";
    "pbft/newview"; "client_update"; "replica_reply"; "transfer_chunk";
    "prime/po_batch"; "client_batch"; "replica_reply_batch"; "member/cert";
    "field/advert"; "field/report";
  |]

let kind_name i = kind_names.(i)

let rec kind_index = function
  | Prime_msg (_, m) -> (
    match m with
    | Prime.Msg.Po_request _ -> 0
    | Prime.Msg.Po_aru _ -> 1
    | Prime.Msg.Preprepare _ -> 2
    | Prime.Msg.Prepare _ -> 3
    | Prime.Msg.Commit _ -> 4
    | Prime.Msg.Suspect _ -> 5
    | Prime.Msg.Viewchange _ -> 6
    | Prime.Msg.Newview _ -> 7
    | Prime.Msg.Recon_request _ -> 8
    | Prime.Msg.Recon_reply _ -> 9
    | Prime.Msg.Slot_request _ -> 10
    | Prime.Msg.Slot_reply _ -> 11
    | Prime.Msg.Checkpoint _ -> 12
    | Prime.Msg.Po_batch _ -> 23)
  | Pbft_msg (_, m) -> (
    match m with
    | Pbft.Msg.Request _ -> 13
    | Pbft.Msg.Preprepare _ -> 14
    | Pbft.Msg.Prepare _ -> 15
    | Pbft.Msg.Commit _ -> 16
    | Pbft.Msg.Checkpoint _ -> 17
    | Pbft.Msg.Viewchange _ -> 18
    | Pbft.Msg.Newview _ -> 19)
  | Client_update _ -> 20
  | Replica_reply _ -> 21
  | Transfer_chunk _ -> 22
  | Client_batch _ -> 24
  | Reply_batch _ -> 25
  (* an epoch frame is accounted as its inner kind: the wrapper is
     transport framing, not a protocol message of its own *)
  | Epoch_frame (_, inner) -> kind_index inner
  | Cert_frame _ -> 26
  | Field_advert _ -> 27
  | Field_report _ -> 28

let kind m = kind_names.(kind_index m)

(* Every constituent is immutable first-order data (ints, int64 digests,
   strings, arrays, records), so structural equality is the value
   equality the decode-on-delivery check needs. *)
let equal (a : t) (b : t) = a = b

let rec pp ppf = function
  | Prime_msg (r, m) -> Format.fprintf ppf "prime[r%d] %a" r Prime.Msg.pp m
  | Pbft_msg (r, m) -> Format.fprintf ppf "pbft[r%d] %a" r Pbft.Msg.pp m
  | Client_update u -> Format.fprintf ppf "update %a" Bft.Update.pp u
  | Replica_reply t -> Format.fprintf ppf "reply %a" Scada.Reply.pp t
  | Transfer_chunk c ->
    Format.fprintf ppf "chunk xfer=%d %d/%d (%d B)"
      c.Recovery.State_transfer.xfer_id c.Recovery.State_transfer.chunk_index
      c.Recovery.State_transfer.chunk_count
      (String.length c.Recovery.State_transfer.data)
  | Client_batch us ->
    Format.fprintf ppf "update batch (%d)" (List.length us)
  | Reply_batch rs -> Format.fprintf ppf "reply batch (%d)" (List.length rs)
  | Epoch_frame (e, inner) -> Format.fprintf ppf "epoch[%d] %a" e pp inner
  | Cert_frame c -> Format.fprintf ppf "cert %a" Member.Cert.pp c
  | Field_advert a -> Format.fprintf ppf "field %a" Scada.Field_frame.pp_advert a
  | Field_report rep ->
    Format.fprintf ppf "field %a" Scada.Field_frame.pp_report rep

let rec w b = function
  | Prime_msg (sender, m) ->
    Rw.w_u8 b 0x01;
    Rw.w_u16 b sender;
    Codec.w_prime b m
  | Pbft_msg (sender, m) ->
    Rw.w_u8 b 0x02;
    Rw.w_u16 b sender;
    Codec.w_pbft b m
  | Client_update u ->
    Rw.w_u8 b 0x03;
    Codec.w_update b u
  | Replica_reply t ->
    Rw.w_u8 b 0x04;
    Codec.w_reply b t
  | Transfer_chunk c ->
    Rw.w_u8 b 0x05;
    Codec.w_chunk b c
  | Client_batch us ->
    Rw.w_u8 b 0x06;
    Rw.w_list b Codec.w_update us
  | Reply_batch rs ->
    Rw.w_u8 b 0x07;
    Rw.w_list b Codec.w_reply rs
  | Epoch_frame (epoch, inner) ->
    Rw.w_u8 b 0x08;
    Rw.w_u32 b epoch;
    w b inner
  | Cert_frame c ->
    Rw.w_u8 b 0x09;
    Codec.w_cert b c
  | Field_advert a ->
    Rw.w_u8 b 0x0A;
    Codec.w_field_advert b a
  | Field_report rep ->
    Rw.w_u8 b 0x0B;
    Codec.w_field_report b rep

let rec r reader =
  let ctx = "message" in
  match Rw.r_u8 ctx reader with
  | 0x01 ->
    let sender = Rw.r_u16 ctx reader in
    Prime_msg (sender, Codec.r_prime reader)
  | 0x02 ->
    let sender = Rw.r_u16 ctx reader in
    Pbft_msg (sender, Codec.r_pbft reader)
  | 0x03 -> Client_update (Codec.r_update reader)
  | 0x04 -> Replica_reply (Codec.r_reply reader)
  | 0x05 -> Transfer_chunk (Codec.r_chunk reader)
  | 0x06 -> Client_batch (Rw.r_list ctx reader Codec.r_update)
  | 0x07 -> Reply_batch (Rw.r_list ctx reader Codec.r_reply)
  | 0x08 ->
    (* Recursion is bounded by the input length: every nesting level
       consumes at least its five header bytes. *)
    let epoch = Rw.r_u32 ctx reader in
    Epoch_frame (epoch, r reader)
  | 0x09 -> Cert_frame (Codec.r_cert reader)
  | 0x0A -> Field_advert (Codec.r_field_advert reader)
  | 0x0B -> Field_report (Codec.r_field_report reader)
  | tag -> raise (Rw.Fail (Rw.Unknown_tag { context = ctx; tag }))

let encode m =
  let b = Buffer.create 160 in
  w b m;
  Buffer.contents b

let decode s = Rw.run s r
