type t =
  | Prime_msg of Bft.Types.replica * Prime.Msg.t
  | Pbft_msg of Bft.Types.replica * Pbft.Msg.t
  | Client_update of Bft.Update.t
  | Replica_reply of Scada.Reply.t
  | Transfer_chunk of Recovery.State_transfer.chunk

let kind = function
  | Prime_msg (_, m) -> (
    match m with
    | Prime.Msg.Po_request _ -> "prime/po_request"
    | Prime.Msg.Po_aru _ -> "prime/po_aru"
    | Prime.Msg.Preprepare _ -> "prime/preprepare"
    | Prime.Msg.Prepare _ -> "prime/prepare"
    | Prime.Msg.Commit _ -> "prime/commit"
    | Prime.Msg.Suspect _ -> "prime/suspect"
    | Prime.Msg.Viewchange _ -> "prime/viewchange"
    | Prime.Msg.Newview _ -> "prime/newview"
    | Prime.Msg.Recon_request _ -> "prime/recon_request"
    | Prime.Msg.Recon_reply _ -> "prime/recon_reply"
    | Prime.Msg.Slot_request _ -> "prime/slot_request"
    | Prime.Msg.Slot_reply _ -> "prime/slot_reply"
    | Prime.Msg.Checkpoint _ -> "prime/checkpoint")
  | Pbft_msg (_, m) -> (
    match m with
    | Pbft.Msg.Request _ -> "pbft/request"
    | Pbft.Msg.Preprepare _ -> "pbft/preprepare"
    | Pbft.Msg.Prepare _ -> "pbft/prepare"
    | Pbft.Msg.Commit _ -> "pbft/commit"
    | Pbft.Msg.Checkpoint _ -> "pbft/checkpoint"
    | Pbft.Msg.Viewchange _ -> "pbft/viewchange"
    | Pbft.Msg.Newview _ -> "pbft/newview")
  | Client_update _ -> "client_update"
  | Replica_reply _ -> "replica_reply"
  | Transfer_chunk _ -> "transfer_chunk"

(* Every constituent is immutable first-order data (ints, int64 digests,
   strings, arrays, records), so structural equality is the value
   equality the decode-on-delivery check needs. *)
let equal (a : t) (b : t) = a = b

let pp ppf = function
  | Prime_msg (r, m) -> Format.fprintf ppf "prime[r%d] %a" r Prime.Msg.pp m
  | Pbft_msg (r, m) -> Format.fprintf ppf "pbft[r%d] %a" r Pbft.Msg.pp m
  | Client_update u -> Format.fprintf ppf "update %a" Bft.Update.pp u
  | Replica_reply t -> Format.fprintf ppf "reply %a" Scada.Reply.pp t
  | Transfer_chunk c ->
    Format.fprintf ppf "chunk xfer=%d %d/%d (%d B)"
      c.Recovery.State_transfer.xfer_id c.Recovery.State_transfer.chunk_index
      c.Recovery.State_transfer.chunk_count
      (String.length c.Recovery.State_transfer.data)

let w b = function
  | Prime_msg (sender, m) ->
    Rw.w_u8 b 0x01;
    Rw.w_u16 b sender;
    Codec.w_prime b m
  | Pbft_msg (sender, m) ->
    Rw.w_u8 b 0x02;
    Rw.w_u16 b sender;
    Codec.w_pbft b m
  | Client_update u ->
    Rw.w_u8 b 0x03;
    Codec.w_update b u
  | Replica_reply t ->
    Rw.w_u8 b 0x04;
    Codec.w_reply b t
  | Transfer_chunk c ->
    Rw.w_u8 b 0x05;
    Codec.w_chunk b c

let r reader =
  let ctx = "message" in
  match Rw.r_u8 ctx reader with
  | 0x01 ->
    let sender = Rw.r_u16 ctx reader in
    Prime_msg (sender, Codec.r_prime reader)
  | 0x02 ->
    let sender = Rw.r_u16 ctx reader in
    Pbft_msg (sender, Codec.r_pbft reader)
  | 0x03 -> Client_update (Codec.r_update reader)
  | 0x04 -> Replica_reply (Codec.r_reply reader)
  | 0x05 -> Transfer_chunk (Codec.r_chunk reader)
  | tag -> raise (Rw.Fail (Rw.Unknown_tag { context = ctx; tag }))

let encode m =
  let b = Buffer.create 160 in
  w b m;
  Buffer.contents b

let decode s = Rw.run s r
