(** The system message union — everything any Spire component ever puts
    on the overlay.

    [Core.System]'s payload type {e is} this type: defining it here lets
    the wire layer encode/decode complete frames without a dependency
    cycle, and leaves the protocol state machines sans-IO (they emit
    values; the deployment serialises them at the network boundary). *)

type t =
  | Prime_msg of Bft.Types.replica * Prime.Msg.t
      (** protocol message from a Prime replica *)
  | Pbft_msg of Bft.Types.replica * Pbft.Msg.t
      (** protocol message from a PBFT replica *)
  | Client_update of Bft.Update.t  (** client (proxy/HMI) submission *)
  | Replica_reply of Scada.Reply.t  (** threshold-signed execution reply *)
  | Transfer_chunk of Recovery.State_transfer.chunk
      (** state-transfer snapshot fragment *)
  | Client_batch of Bft.Update.t list
      (** client submission batch: one signed frame amortized over
          several accumulated updates ([Bft.Batch]) *)
  | Reply_batch of Scada.Reply.t list
      (** several threshold-signed execution replies to the same client
          in one envelope *)
  | Epoch_frame of int * t
      (** membership-epoch envelope around a protocol frame: receivers
          reject stale-epoch traffic before it reaches protocol state.
          Epoch-0 frames travel bare (genesis trajectory unchanged);
          accounted under the inner message's kind. *)
  | Cert_frame of Member.Cert.t
      (** membership certificate announcement broadcast at an epoch
          cutover *)
  | Field_advert of Scada.Field_frame.advert
      (** register-map capability advertisement a fleet device sends
          when its concentrator session links up (and on relink) *)
  | Field_report of Scada.Field_frame.report
      (** report-by-exception event batch on the device-to-concentrator
          field link *)

(** [kind m] is a stable per-variant label (drilling into the protocol
    message variant, e.g. ["prime/preprepare"]) used for per-class
    traffic accounting. *)
val kind : t -> string

(** Kinds also form a dense index [0 .. kind_count - 1] so per-kind
    accounting can use preallocated counter arrays on the send fast
    path instead of hashing label strings. *)
val kind_count : int

(** [kind_index m] is the dense index of [m]'s kind;
    [kind_name (kind_index m) = kind m]. *)
val kind_index : t -> int

(** [kind_name i] is the label of kind index [i].
    @raise Invalid_argument if [i] is out of range. *)
val kind_name : int -> string

(** [equal a b] — structural value equality (used by the
    decode-on-delivery debug check). *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

(** Bare body codec (no envelope): tag byte + message body. *)
val encode : t -> string

val decode : string -> (t, Rw.error) result

(** Writer/reader forms for the envelope codec. *)
val w : Rw.writer -> t -> unit

val r : Rw.reader -> t
