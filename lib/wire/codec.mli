(** Binary codecs for the entire protocol message vocabulary.

    Each protocol type gets an [encode_x : x -> string] /
    [decode_x : string -> (x, Rw.error) result] pair. Encodings are
    deterministic (equal values produce identical bytes), big-endian,
    and self-delimiting; decoders are total — truncated, mutated or
    arbitrary input yields [Error], never an exception.

    Scalar conventions: replica/client ids u16, sequence numbers, views
    and pre-order counters u32, virtual timestamps i64, digests 8 raw
    bytes, byte strings u32-length-prefixed, lists u16-counted. SCADA
    operations reuse the byte-level application encoding of
    {!Scada.Op.encode} (which itself frames DNP3-style payloads), so an
    update's operation travels as the same bytes a field device sees. *)

(** {1 Per-type codecs} *)

val encode_update : Bft.Update.t -> string
val decode_update : string -> (Bft.Update.t, Rw.error) result

val encode_prime : Prime.Msg.t -> string
val decode_prime : string -> (Prime.Msg.t, Rw.error) result

val encode_pbft : Pbft.Msg.t -> string
val decode_pbft : string -> (Pbft.Msg.t, Rw.error) result

val encode_op : Scada.Op.t -> string
val decode_op : string -> (Scada.Op.t, Rw.error) result

val encode_reply : Scada.Reply.t -> string
val decode_reply : string -> (Scada.Reply.t, Rw.error) result

val encode_chunk : Recovery.State_transfer.chunk -> string
val decode_chunk : string -> (Recovery.State_transfer.chunk, Rw.error) result

(** {1 Writer/reader forms}

    Exposed so composite codecs (the system message union, the
    envelope) can embed sub-messages without re-framing. *)

val w_update : Rw.writer -> Bft.Update.t -> unit
val r_update : Rw.reader -> Bft.Update.t
val w_matrix : Rw.writer -> Prime.Matrix.t -> unit
val r_matrix : Rw.reader -> Prime.Matrix.t
val w_prime : Rw.writer -> Prime.Msg.t -> unit
val r_prime : Rw.reader -> Prime.Msg.t
val w_pbft : Rw.writer -> Pbft.Msg.t -> unit
val r_pbft : Rw.reader -> Pbft.Msg.t
val w_reply : Rw.writer -> Scada.Reply.t -> unit
val r_reply : Rw.reader -> Scada.Reply.t
val w_chunk : Rw.writer -> Recovery.State_transfer.chunk -> unit
val r_chunk : Rw.reader -> Recovery.State_transfer.chunk

val encode_cert : Member.Cert.t -> string
val decode_cert : string -> (Member.Cert.t, Rw.error) result
val w_cert : Rw.writer -> Member.Cert.t -> unit
val r_cert : Rw.reader -> Member.Cert.t

val encode_field_advert : Scada.Field_frame.advert -> string
val decode_field_advert : string -> (Scada.Field_frame.advert, Rw.error) result
val w_field_advert : Rw.writer -> Scada.Field_frame.advert -> unit
val r_field_advert : Rw.reader -> Scada.Field_frame.advert

val encode_field_report : Scada.Field_frame.report -> string
val decode_field_report : string -> (Scada.Field_frame.report, Rw.error) result
val w_field_report : Rw.writer -> Scada.Field_frame.report -> unit
val r_field_report : Rw.reader -> Scada.Field_frame.report
