(** Authenticated wire envelope: the complete frame a Spire component
    hands to the overlay.

    Layout (big-endian):
    {v
    0      2        3        4         6          10
    | magic | version | scheme | sender  | body_len | body ... | auth tag |
    |  "Sp" |   0x01  |  u8    |  u16    |   u32    |          |          |
    v}

    The trailing authenticator's length depends on the scheme, matching
    the crypto layer's cost model classes (see {!Cryptosim.Auth} and
    {!Cryptosim.Threshold}):

    - [Hmac] (32 B, HMAC-SHA256 class): pairwise MACs on high-rate
      replica-to-replica traffic;
    - [Rsa] (256 B, RSA-2048 class): client-signed submissions, where
      replicas must be able to prove provenance to third parties;
    - [Threshold_sig] (128 B, threshold RSA share class): replica
      execution replies, whose authenticator is the signature share the
      client combines.

    The simulated authenticator is an 8-byte digest over
    (scheme, sender, body) followed by zero padding to the scheme's
    real-world size — so byte accounting matches deployment-class
    traffic, and any single-bit corruption of header, body, or tag is
    detected at decode ({!Rw.Auth_mismatch} or a structural error).
    Decoding never raises. *)

type scheme = Hmac | Rsa | Threshold_sig

(** [tag_bytes scheme] is the authenticator length charged on the wire. *)
val tag_bytes : scheme -> int

(** [header_bytes] is the fixed frame header size (10 bytes). *)
val header_bytes : int

(** [overhead scheme] = [header_bytes + tag_bytes scheme] — envelope
    bytes added on top of the encoded message body. *)
val overhead : scheme -> int

(** [scheme_of msg] assigns the authentication class the deployment
    uses for each traffic kind. *)
val scheme_of : Message.t -> scheme

type envelope = { sender : int; scheme : scheme; message : Message.t }

(** [encode ~sender msg] is the full frame: header, body, authenticator.
    The frame's length is the byte cost the overlay's bandwidth model
    charges. *)
val encode : sender:int -> Message.t -> string

(** [decode s] verifies magic, version, scheme, exact length and the
    authenticator, then decodes the body. Total: arbitrary input yields
    [Error]. *)
val decode : string -> (envelope, Rw.error) result

(** [size ~sender msg] = [String.length (encode ~sender msg)], computed
    directly via {!Measure} without encoding (frame length does not
    depend on the sender). *)
val size : sender:int -> Message.t -> int
