(** Byte-level reader/writer primitives shared by every codec.

    Writers append big-endian fields to a {!Buffer.t}; readers consume a
    [string] with strict bounds checking. Decoding NEVER lets an
    exception escape: every failure is funnelled into {!error} by
    {!run}, which also rejects trailing garbage — a codec must consume
    its input exactly. *)

type error =
  | Truncated of { context : string; wanted : int; available : int }
      (** a field needed [wanted] more bytes; only [available] remain *)
  | Bad_magic
  | Unsupported_version of int
  | Unknown_tag of { context : string; tag : int }
  | Trailing_garbage of { extra : int }
  | Auth_mismatch  (** envelope authenticator fails verification *)
  | Invalid_value of { context : string; detail : string }

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

(** {1 Writing} *)

type writer = Buffer.t

val w_u8 : writer -> int -> unit
val w_u16 : writer -> int -> unit
val w_u32 : writer -> int -> unit
val w_i64 : writer -> int64 -> unit
val w_bool : writer -> bool -> unit
val w_digest : writer -> Cryptosim.Digest.t -> unit

(** [w_bytes w s] appends a u32 length prefix then the raw bytes. *)
val w_bytes : writer -> string -> unit

(** [w_list w f l] appends a u16 count then each element via [f].
    @raise Invalid_argument if the list exceeds 65535 elements. *)
val w_list : writer -> (writer -> 'a -> unit) -> 'a list -> unit

val w_option : writer -> (writer -> 'a -> unit) -> 'a option -> unit

(** {1 Reading} *)

type reader

(** Raised internally by field readers; callers outside this module see
    it only as the [Error] result of {!run}. *)
exception Fail of error

val r_u8 : string -> reader -> int
val r_u16 : string -> reader -> int
val r_u32 : string -> reader -> int
val r_i64 : string -> reader -> int64
val r_bool : string -> reader -> bool
val r_digest : string -> reader -> Cryptosim.Digest.t
val r_bytes : string -> reader -> string
val r_list : string -> reader -> (reader -> 'a) -> 'a list
val r_option : string -> reader -> (reader -> 'a) -> 'a option

(** [pos r] / [remaining r]: cursor introspection. *)
val pos : reader -> int

val remaining : reader -> int

(** [take r n] consumes [n] raw bytes. *)
val take : string -> reader -> int -> string

(** [run s f] decodes [s] with [f]. Catches every exception ([Fail] maps
    to its error; anything else becomes [Invalid_value]) and rejects
    input not consumed to the last byte. *)
val run : string -> (reader -> 'a) -> ('a, error) result

(** [run_prefix s f] like {!run} but permits trailing bytes, returning
    the value and the number of bytes consumed. *)
val run_prefix : string -> (reader -> 'a) -> ('a * int, error) result
