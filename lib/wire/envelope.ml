type scheme = Hmac | Rsa | Threshold_sig

let magic0 = 0x53 (* 'S' *)
let magic1 = 0x70 (* 'p' *)
let version = 0x01

let tag_bytes = function Hmac -> 32 | Rsa -> 256 | Threshold_sig -> 128
let header_bytes = 10
let overhead scheme = header_bytes + tag_bytes scheme

let scheme_tag = function Hmac -> 0x01 | Rsa -> 0x02 | Threshold_sig -> 0x03

let scheme_of_tag = function
  | 0x01 -> Some Hmac
  | 0x02 -> Some Rsa
  | 0x03 -> Some Threshold_sig
  | _ -> None

let rec scheme_of = function
  | Message.Prime_msg _ | Message.Pbft_msg _ | Message.Transfer_chunk _ -> Hmac
  | Message.Client_update _ | Message.Client_batch _ -> Rsa
  | Message.Replica_reply _ | Message.Reply_batch _ -> Threshold_sig
  (* The epoch wrapper authenticates like its payload; certificates
     carry RSA signatures (they cross epochs, where HMAC key sets may
     have rotated). *)
  | Message.Epoch_frame (_, inner) -> scheme_of inner
  | Message.Cert_frame _ -> Rsa
  (* Field-link frames ride per-session HMAC keys between a device and
     its concentrator — the last mile has no PKI. *)
  | Message.Field_advert _ | Message.Field_report _ -> Hmac

type envelope = { sender : int; scheme : scheme; message : Message.t }

(* Simulated authenticator: digest of (scheme, sender, body). The first
   8 tag bytes carry it; the rest are zero padding to the scheme's
   real-world authenticator size. *)
let auth_digest scheme sender body =
  Cryptosim.Digest.of_string
    (Printf.sprintf "env:%d:%d:%s" (scheme_tag scheme) sender body)

let encode ~sender msg =
  let body = Message.encode msg in
  let scheme = scheme_of msg in
  let b = Buffer.create (overhead scheme + String.length body) in
  Rw.w_u8 b magic0;
  Rw.w_u8 b magic1;
  Rw.w_u8 b version;
  Rw.w_u8 b (scheme_tag scheme);
  Rw.w_u16 b sender;
  Rw.w_u32 b (String.length body);
  Buffer.add_string b body;
  Rw.w_i64 b (Cryptosim.Digest.to_int64 (auth_digest scheme sender body));
  Buffer.add_string b (String.make (tag_bytes scheme - 8) '\000');
  Buffer.contents b

(* Frame length is sender-independent (the sender travels as a fixed
   u16), so it can be computed arithmetically from the message alone —
   no frame allocation, no body encode, no authenticator digest. *)
let size ~sender:_ msg =
  overhead (scheme_of msg) + Measure.message msg

let decode s =
  Rw.run s (fun r ->
      let ctx = "envelope" in
      let m0 = Rw.r_u8 ctx r in
      let m1 = Rw.r_u8 ctx r in
      if m0 <> magic0 || m1 <> magic1 then raise (Rw.Fail Rw.Bad_magic);
      let v = Rw.r_u8 ctx r in
      if v <> version then raise (Rw.Fail (Rw.Unsupported_version v));
      let stag = Rw.r_u8 ctx r in
      let scheme =
        match scheme_of_tag stag with
        | Some s -> s
        | None -> raise (Rw.Fail (Rw.Unknown_tag { context = ctx; tag = stag }))
      in
      let sender = Rw.r_u16 ctx r in
      let body_len = Rw.r_u32 ctx r in
      let body = Rw.take ctx r body_len in
      let tag8 = Rw.r_i64 ctx r in
      let padding = Rw.take ctx r (tag_bytes scheme - 8) in
      if
        (not
           (Int64.equal tag8
              (Cryptosim.Digest.to_int64 (auth_digest scheme sender body))))
        || String.exists (fun c -> c <> '\000') padding
      then raise (Rw.Fail Rw.Auth_mismatch);
      (* Decode the authenticated body; it must consume body exactly. *)
      match Rw.run body Message.r with
      | Ok message -> { sender; scheme; message }
      | Error e -> raise (Rw.Fail e))
