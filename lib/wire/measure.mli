(** Measured frame sizes: the byte length each codec would produce,
    computed directly from the value without encoding it.

    Every function obeys the law

    {v size v = String.length (encode v) v}

    against the corresponding {!Codec} / {!Message} encoder (checked by
    qcheck over all message constructors). [Envelope.size] is built on
    {!message}, which makes per-send byte accounting an arithmetic walk
    over the value instead of a full serialisation — the difference
    between O(bytes) of allocation and none on the hot path. *)

val update : Bft.Update.t -> int
val vector : Prime.Matrix.vector -> int
val matrix : Prime.Matrix.t -> int
val prime : Prime.Msg.t -> int
val pbft : Pbft.Msg.t -> int
val reply : Scada.Reply.t -> int
val chunk : Recovery.State_transfer.chunk -> int
val field_advert : Scada.Field_frame.advert -> int
val field_report : Scada.Field_frame.report -> int

(** [message m] = [String.length (Message.encode m)] — the bare body
    size, before envelope framing. *)
val message : Message.t -> int
