(** Attacker byte-strings for DoS and fuzz scenarios.

    The attack layer used to inject abstract "junk frames" that only
    existed as a byte count; with real codecs, junk is real bytes that
    the decoders must reject. [rand] is the attacker's entropy source
    ([rand bound] uniform in [0, bound), e.g. [Sim.Rng.int rng]). *)

(** [undecodable ~rand ~size_bytes] is a [size_bytes]-long byte string
    guaranteed to fail {!Envelope.decode} (random bytes, with the magic
    spoiled in the astronomically unlikely case they form a valid
    frame). [size_bytes] must be >= 1.
    @raise Invalid_argument otherwise. *)
val undecodable : rand:(int -> int) -> size_bytes:int -> string

(** [spoofed_header ~rand ~size_bytes] starts with valid magic and
    version followed by random bytes — junk that gets past the cheap
    header checks and must be rejected by the length/auth/body layers.
    Still guaranteed undecodable. Needs [size_bytes >= 3].
    @raise Invalid_argument otherwise. *)
val spoofed_header : rand:(int -> int) -> size_bytes:int -> string

(** [lying_batch ~rand] is a bare [Client_batch] message body whose
    element count claims more updates than its bytes can hold — the
    resource-exhaustion shape a batched decoder must reject {e before}
    allocating. Guaranteed to fail {!Message.decode}. *)
val lying_batch : rand:(int -> int) -> string

(** [corrupt ~rand s] flips one random bit of [s] (uniform position) —
    the bit-flip mutation the fuzz suite drives through every decoder. *)
val corrupt : rand:(int -> int) -> string -> string
