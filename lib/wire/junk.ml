let random_bytes ~rand n = String.init n (fun _ -> Char.chr (rand 256))

let ensure_undecodable s =
  match Envelope.decode s with
  | Error _ -> s
  | Ok _ ->
    (* Random bytes formed a valid authenticated frame: spoil the magic. *)
    let b = Bytes.of_string s in
    Bytes.set b 0 '\000';
    Bytes.to_string b

let undecodable ~rand ~size_bytes =
  if size_bytes < 1 then invalid_arg "Wire.Junk.undecodable: size_bytes < 1";
  ensure_undecodable (random_bytes ~rand size_bytes)

let spoofed_header ~rand ~size_bytes =
  if size_bytes < 3 then invalid_arg "Wire.Junk.spoofed_header: size_bytes < 3";
  let s =
    "Sp\001" ^ random_bytes ~rand (size_bytes - 3)
  in
  match Envelope.decode s with
  | Error _ -> s
  | Ok _ ->
    let b = Bytes.of_string s in
    Bytes.set b 2 '\255' (* break the version byte instead of the magic *);
    Bytes.to_string b

let lying_batch ~rand =
  (* A bare Client_batch body whose u16 element count promises far more
     updates than the remaining bytes can hold. [Rw.r_list] must reject
     the count before allocating; Message.decode returns Error. *)
  let b = Buffer.create 32 in
  Rw.w_u8 b 0x06;
  Rw.w_u16 b (0x1000 + rand 0xe000);
  Buffer.add_string b (random_bytes ~rand (rand 24));
  let s = Buffer.contents b in
  match Message.decode s with
  | Error _ -> s
  | Ok _ -> assert false (* the count always exceeds the body *)

let corrupt ~rand s =
  if String.length s = 0 then s
  else begin
    let b = Bytes.of_string s in
    let at = rand (String.length s) in
    let bit = 1 lsl rand 8 in
    Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor bit));
    Bytes.to_string b
  end
