let encode_with w v =
  let b = Buffer.create 128 in
  w b v;
  Buffer.contents b

let decode_with r s = Rw.run s r

(* ------------------------------------------------------------------ *)
(* Bft.Update.t                                                        *)

let w_update b (u : Bft.Update.t) =
  Rw.w_u16 b u.Bft.Update.client;
  Rw.w_u32 b u.Bft.Update.client_seq;
  Rw.w_i64 b (Int64.of_int u.Bft.Update.submitted_us);
  Rw.w_bytes b u.Bft.Update.operation

let r_update r =
  let client = Rw.r_u16 "update.client" r in
  let client_seq = Rw.r_u32 "update.client_seq" r in
  let submitted_us = Int64.to_int (Rw.r_i64 "update.submitted_us" r) in
  let operation = Rw.r_bytes "update.operation" r in
  Bft.Update.create ~client ~client_seq ~operation ~submitted_us

let encode_update = encode_with w_update
let decode_update = decode_with r_update

(* ------------------------------------------------------------------ *)
(* Prime vectors and matrices                                          *)

let w_vector b (v : Prime.Matrix.vector) =
  let n = Array.length v in
  if n > 0xffff then invalid_arg "Wire.Codec: vector too long";
  Rw.w_u16 b n;
  Array.iter (fun e -> Rw.w_u32 b e) v

let r_vector r =
  let ctx = "vector" in
  let n = Rw.r_u16 ctx r in
  (* 4 bytes per entry: bound-check before allocating. *)
  if Rw.remaining r < 4 * n then
    raise
      (Rw.Fail
         (Rw.Truncated { context = ctx; wanted = 4 * n; available = Rw.remaining r }));
  let v = Array.make n 0 in
  for i = 0 to n - 1 do
    v.(i) <- Rw.r_u32 ctx r
  done;
  v

let w_matrix b (m : Prime.Matrix.t) =
  let rows = Array.length m in
  if rows > 0xffff then invalid_arg "Wire.Codec: matrix too large";
  Rw.w_u16 b rows;
  Array.iter (w_vector b) m

let r_matrix r =
  let rows = Rw.r_u16 "matrix" r in
  (* Each row is at least 2 bytes of count. *)
  if Rw.remaining r < 2 * rows then
    raise
      (Rw.Fail
         (Rw.Truncated
            { context = "matrix"; wanted = 2 * rows; available = Rw.remaining r }));
  let m = Array.make rows [||] in
  for i = 0 to rows - 1 do
    m.(i) <- r_vector r
  done;
  m

(* ------------------------------------------------------------------ *)
(* Prime.Msg.t                                                         *)

let w_prime_prepared b (e : Prime.Msg.prepared_entry) =
  Rw.w_u32 b e.Prime.Msg.entry_seq;
  Rw.w_u32 b e.Prime.Msg.entry_view;
  w_matrix b e.Prime.Msg.entry_matrix

let r_prime_prepared r =
  let entry_seq = Rw.r_u32 "prime.prepared.seq" r in
  let entry_view = Rw.r_u32 "prime.prepared.view" r in
  let entry_matrix = r_matrix r in
  { Prime.Msg.entry_seq; entry_view; entry_matrix }

let w_prime b (m : Prime.Msg.t) =
  match m with
  | Prime.Msg.Po_request { origin; po_seq; update } ->
    Rw.w_u8 b 0x01;
    Rw.w_u16 b origin;
    Rw.w_u32 b po_seq;
    w_update b update
  | Prime.Msg.Po_aru { vector } ->
    Rw.w_u8 b 0x02;
    w_vector b vector
  | Prime.Msg.Preprepare { view; seq; matrix } ->
    Rw.w_u8 b 0x03;
    Rw.w_u32 b view;
    Rw.w_u32 b seq;
    w_matrix b matrix
  | Prime.Msg.Prepare { view; seq; digest } ->
    Rw.w_u8 b 0x04;
    Rw.w_u32 b view;
    Rw.w_u32 b seq;
    Rw.w_digest b digest
  | Prime.Msg.Commit { view; seq; digest } ->
    Rw.w_u8 b 0x05;
    Rw.w_u32 b view;
    Rw.w_u32 b seq;
    Rw.w_digest b digest
  | Prime.Msg.Suspect { view } ->
    Rw.w_u8 b 0x06;
    Rw.w_u32 b view
  | Prime.Msg.Viewchange { new_view; last_committed; prepared } ->
    Rw.w_u8 b 0x07;
    Rw.w_u32 b new_view;
    Rw.w_u32 b last_committed;
    Rw.w_list b w_prime_prepared prepared
  | Prime.Msg.Newview { view; proposals } ->
    Rw.w_u8 b 0x08;
    Rw.w_u32 b view;
    Rw.w_list b
      (fun b (seq, matrix) ->
        Rw.w_u32 b seq;
        w_matrix b matrix)
      proposals
  | Prime.Msg.Recon_request { origin; po_seq } ->
    Rw.w_u8 b 0x09;
    Rw.w_u16 b origin;
    Rw.w_u32 b po_seq
  | Prime.Msg.Recon_reply { origin; po_seq; update } ->
    Rw.w_u8 b 0x0a;
    Rw.w_u16 b origin;
    Rw.w_u32 b po_seq;
    w_update b update
  | Prime.Msg.Slot_request { seq } ->
    Rw.w_u8 b 0x0b;
    Rw.w_u32 b seq
  | Prime.Msg.Slot_reply { seq; matrix } ->
    Rw.w_u8 b 0x0c;
    Rw.w_u32 b seq;
    w_matrix b matrix
  | Prime.Msg.Checkpoint { executed; chain } ->
    Rw.w_u8 b 0x0d;
    Rw.w_u32 b executed;
    Rw.w_digest b chain
  | Prime.Msg.Po_batch { origin; first_seq; updates } ->
    Rw.w_u8 b 0x0e;
    Rw.w_u16 b origin;
    Rw.w_u32 b first_seq;
    Rw.w_list b w_update updates

let r_prime r =
  let ctx = "prime.msg" in
  match Rw.r_u8 ctx r with
  | 0x01 ->
    let origin = Rw.r_u16 ctx r in
    let po_seq = Rw.r_u32 ctx r in
    let update = r_update r in
    Prime.Msg.Po_request { origin; po_seq; update }
  | 0x02 -> Prime.Msg.Po_aru { vector = r_vector r }
  | 0x03 ->
    let view = Rw.r_u32 ctx r in
    let seq = Rw.r_u32 ctx r in
    let matrix = r_matrix r in
    Prime.Msg.Preprepare { view; seq; matrix }
  | 0x04 ->
    let view = Rw.r_u32 ctx r in
    let seq = Rw.r_u32 ctx r in
    let digest = Rw.r_digest ctx r in
    Prime.Msg.Prepare { view; seq; digest }
  | 0x05 ->
    let view = Rw.r_u32 ctx r in
    let seq = Rw.r_u32 ctx r in
    let digest = Rw.r_digest ctx r in
    Prime.Msg.Commit { view; seq; digest }
  | 0x06 -> Prime.Msg.Suspect { view = Rw.r_u32 ctx r }
  | 0x07 ->
    let new_view = Rw.r_u32 ctx r in
    let last_committed = Rw.r_u32 ctx r in
    let prepared = Rw.r_list ctx r r_prime_prepared in
    Prime.Msg.Viewchange { new_view; last_committed; prepared }
  | 0x08 ->
    let view = Rw.r_u32 ctx r in
    let proposals =
      Rw.r_list ctx r (fun r ->
          let seq = Rw.r_u32 ctx r in
          let matrix = r_matrix r in
          (seq, matrix))
    in
    Prime.Msg.Newview { view; proposals }
  | 0x09 ->
    let origin = Rw.r_u16 ctx r in
    let po_seq = Rw.r_u32 ctx r in
    Prime.Msg.Recon_request { origin; po_seq }
  | 0x0a ->
    let origin = Rw.r_u16 ctx r in
    let po_seq = Rw.r_u32 ctx r in
    let update = r_update r in
    Prime.Msg.Recon_reply { origin; po_seq; update }
  | 0x0b -> Prime.Msg.Slot_request { seq = Rw.r_u32 ctx r }
  | 0x0c ->
    let seq = Rw.r_u32 ctx r in
    let matrix = r_matrix r in
    Prime.Msg.Slot_reply { seq; matrix }
  | 0x0d ->
    let executed = Rw.r_u32 ctx r in
    let chain = Rw.r_digest ctx r in
    Prime.Msg.Checkpoint { executed; chain }
  | 0x0e ->
    let origin = Rw.r_u16 ctx r in
    let first_seq = Rw.r_u32 ctx r in
    let updates = Rw.r_list ctx r r_update in
    Prime.Msg.Po_batch { origin; first_seq; updates }
  | tag -> raise (Rw.Fail (Rw.Unknown_tag { context = ctx; tag }))

let encode_prime = encode_with w_prime
let decode_prime = decode_with r_prime

(* ------------------------------------------------------------------ *)
(* Pbft.Msg.t                                                          *)

let w_proposal b (p : Pbft.Msg.proposal) =
  Rw.w_u32 b p.Pbft.Msg.seq;
  Rw.w_list b w_update p.Pbft.Msg.updates

let r_proposal r =
  let seq = Rw.r_u32 "pbft.proposal.seq" r in
  let updates = Rw.r_list "pbft.proposal.updates" r r_update in
  { Pbft.Msg.seq; updates }

let w_pbft_prepared b (e : Pbft.Msg.prepared_entry) =
  Rw.w_u32 b e.Pbft.Msg.entry_seq;
  Rw.w_u32 b e.Pbft.Msg.entry_view;
  Rw.w_list b w_update e.Pbft.Msg.entry_updates

let r_pbft_prepared r =
  let entry_seq = Rw.r_u32 "pbft.prepared.seq" r in
  let entry_view = Rw.r_u32 "pbft.prepared.view" r in
  let entry_updates = Rw.r_list "pbft.prepared.updates" r r_update in
  { Pbft.Msg.entry_seq; entry_view; entry_updates }

let w_pbft b (m : Pbft.Msg.t) =
  match m with
  | Pbft.Msg.Request { update; broadcast } ->
    Rw.w_u8 b 0x01;
    w_update b update;
    Rw.w_bool b broadcast
  | Pbft.Msg.Preprepare { view; proposal } ->
    Rw.w_u8 b 0x02;
    Rw.w_u32 b view;
    w_proposal b proposal
  | Pbft.Msg.Prepare { view; seq; digest } ->
    Rw.w_u8 b 0x03;
    Rw.w_u32 b view;
    Rw.w_u32 b seq;
    Rw.w_digest b digest
  | Pbft.Msg.Commit { view; seq; digest } ->
    Rw.w_u8 b 0x04;
    Rw.w_u32 b view;
    Rw.w_u32 b seq;
    Rw.w_digest b digest
  | Pbft.Msg.Checkpoint { seq; chain } ->
    Rw.w_u8 b 0x05;
    Rw.w_u32 b seq;
    Rw.w_digest b chain
  | Pbft.Msg.Viewchange { new_view; last_stable; prepared } ->
    Rw.w_u8 b 0x06;
    Rw.w_u32 b new_view;
    Rw.w_u32 b last_stable;
    Rw.w_list b w_pbft_prepared prepared
  | Pbft.Msg.Newview { view; proposals; stable_seq } ->
    Rw.w_u8 b 0x07;
    Rw.w_u32 b view;
    Rw.w_u32 b stable_seq;
    Rw.w_list b w_proposal proposals

let r_pbft r =
  let ctx = "pbft.msg" in
  match Rw.r_u8 ctx r with
  | 0x01 ->
    let update = r_update r in
    let broadcast = Rw.r_bool ctx r in
    Pbft.Msg.Request { update; broadcast }
  | 0x02 ->
    let view = Rw.r_u32 ctx r in
    let proposal = r_proposal r in
    Pbft.Msg.Preprepare { view; proposal }
  | 0x03 ->
    let view = Rw.r_u32 ctx r in
    let seq = Rw.r_u32 ctx r in
    let digest = Rw.r_digest ctx r in
    Pbft.Msg.Prepare { view; seq; digest }
  | 0x04 ->
    let view = Rw.r_u32 ctx r in
    let seq = Rw.r_u32 ctx r in
    let digest = Rw.r_digest ctx r in
    Pbft.Msg.Commit { view; seq; digest }
  | 0x05 ->
    let seq = Rw.r_u32 ctx r in
    let chain = Rw.r_digest ctx r in
    Pbft.Msg.Checkpoint { seq; chain }
  | 0x06 ->
    let new_view = Rw.r_u32 ctx r in
    let last_stable = Rw.r_u32 ctx r in
    let prepared = Rw.r_list ctx r r_pbft_prepared in
    Pbft.Msg.Viewchange { new_view; last_stable; prepared }
  | 0x07 ->
    let view = Rw.r_u32 ctx r in
    let stable_seq = Rw.r_u32 ctx r in
    let proposals = Rw.r_list ctx r r_proposal in
    Pbft.Msg.Newview { view; proposals; stable_seq }
  | tag -> raise (Rw.Fail (Rw.Unknown_tag { context = ctx; tag }))

let encode_pbft = encode_with w_pbft
let decode_pbft = decode_with r_pbft

(* ------------------------------------------------------------------ *)
(* Scada.Op.t — delegate to the existing byte-level application codec
   (it already frames status/command payloads DNP3-style).             *)

let encode_op = Scada.Op.encode

let decode_op s =
  match Scada.Op.decode s with
  | Ok op -> Ok op
  | Error detail -> Error (Rw.Invalid_value { context = "scada.op"; detail })

(* ------------------------------------------------------------------ *)
(* Scada.Reply.t                                                       *)

let w_reply b (t : Scada.Reply.t) =
  Rw.w_u16 b t.Scada.Reply.replica;
  let client, cseq = t.Scada.Reply.update_key in
  Rw.w_u16 b client;
  Rw.w_u32 b cseq;
  Rw.w_u32 b t.Scada.Reply.exec_index;
  Rw.w_digest b t.Scada.Reply.digest;
  let member, share_digest, tag = Cryptosim.Threshold.share_repr t.Scada.Reply.share in
  Rw.w_u16 b member;
  Rw.w_digest b share_digest;
  Rw.w_digest b tag;
  match t.Scada.Reply.body with
  | Scada.Reply.Ack -> Rw.w_u8 b 0x00
  | Scada.Reply.Command { rtu; frame } ->
    Rw.w_u8 b 0x01;
    Rw.w_u16 b rtu;
    Rw.w_bytes b frame

let r_reply r =
  let ctx = "scada.reply" in
  let replica = Rw.r_u16 ctx r in
  let client = Rw.r_u16 ctx r in
  let cseq = Rw.r_u32 ctx r in
  let exec_index = Rw.r_u32 ctx r in
  let digest = Rw.r_digest ctx r in
  let member = Rw.r_u16 ctx r in
  let share_digest = Rw.r_digest ctx r in
  let tag = Rw.r_digest ctx r in
  let share =
    Cryptosim.Threshold.share_of_repr ~member ~digest:share_digest ~tag
  in
  let body =
    match Rw.r_u8 ctx r with
    | 0x00 -> Scada.Reply.Ack
    | 0x01 ->
      let rtu = Rw.r_u16 ctx r in
      let frame = Rw.r_bytes ctx r in
      Scada.Reply.Command { rtu; frame }
    | tag -> raise (Rw.Fail (Rw.Unknown_tag { context = ctx; tag }))
  in
  {
    Scada.Reply.replica;
    update_key = (client, cseq);
    exec_index;
    digest;
    share;
    body;
  }

let encode_reply = encode_with w_reply
let decode_reply = decode_with r_reply

(* ------------------------------------------------------------------ *)
(* Recovery.State_transfer.chunk                                       *)

let w_chunk b (c : Recovery.State_transfer.chunk) =
  Rw.w_u32 b c.Recovery.State_transfer.xfer_id;
  Rw.w_u32 b c.Recovery.State_transfer.chunk_index;
  Rw.w_u32 b c.Recovery.State_transfer.chunk_count;
  Rw.w_digest b c.Recovery.State_transfer.total_digest;
  Rw.w_bytes b c.Recovery.State_transfer.data

let r_chunk r =
  let ctx = "xfer.chunk" in
  let xfer_id = Rw.r_u32 ctx r in
  let chunk_index = Rw.r_u32 ctx r in
  let chunk_count = Rw.r_u32 ctx r in
  let total_digest = Rw.r_digest ctx r in
  let data = Rw.r_bytes ctx r in
  { Recovery.State_transfer.xfer_id; chunk_index; chunk_count; total_digest; data }

let encode_chunk = encode_with w_chunk
let decode_chunk = decode_with r_chunk

(* ------------------------------------------------------------------ *)
(* Member.Cert.t                                                       *)

let w_role b = function
  | Member.Cert.Active_cc -> Rw.w_u8 b 0x01
  | Member.Cert.Backup_cc -> Rw.w_u8 b 0x02
  | Member.Cert.Data_center -> Rw.w_u8 b 0x03

let r_role r =
  let ctx = "cert.role" in
  match Rw.r_u8 ctx r with
  | 0x01 -> Member.Cert.Active_cc
  | 0x02 -> Member.Cert.Backup_cc
  | 0x03 -> Member.Cert.Data_center
  | tag -> raise (Rw.Fail (Rw.Unknown_tag { context = ctx; tag }))

let w_site b (s : Member.Cert.site) =
  Rw.w_u16 b s.Member.Cert.site_id;
  w_role b s.Member.Cert.role;
  Rw.w_list b (fun b m -> Rw.w_u16 b m) s.Member.Cert.members

let r_site r =
  let ctx = "cert.site" in
  let site_id = Rw.r_u16 ctx r in
  let role = r_role r in
  let members = Rw.r_list ctx r (fun r -> Rw.r_u16 ctx r) in
  { Member.Cert.site_id; role; members }

let w_cert b (c : Member.Cert.t) =
  Rw.w_u32 b c.Member.Cert.epoch;
  Rw.w_u16 b c.Member.Cert.f;
  Rw.w_u16 b c.Member.Cert.k;
  Rw.w_u32 b c.Member.Cert.boundary_exec;
  Rw.w_list b w_site c.Member.Cert.sites;
  Rw.w_list b (fun b m -> Rw.w_u16 b m) c.Member.Cert.signers;
  Rw.w_digest b c.Member.Cert.prev_digest

let r_cert r =
  let ctx = "cert" in
  let epoch = Rw.r_u32 ctx r in
  let f = Rw.r_u16 ctx r in
  let k = Rw.r_u16 ctx r in
  let boundary_exec = Rw.r_u32 ctx r in
  let sites = Rw.r_list ctx r r_site in
  let signers = Rw.r_list ctx r (fun r -> Rw.r_u16 ctx r) in
  let prev_digest = Rw.r_digest ctx r in
  { Member.Cert.epoch; f; k; boundary_exec; sites; signers; prev_digest }

let encode_cert = encode_with w_cert
let decode_cert = decode_with r_cert

(* ------------------------------------------------------------------ *)
(* Scada.Field_frame — field-link frames (device <-> concentrator)     *)

let w_field_advert b (a : Scada.Field_frame.advert) =
  Rw.w_u16 b a.Scada.Field_frame.concentrator;
  Rw.w_u32 b a.Scada.Field_frame.device;
  Rw.w_u8 b a.Scada.Field_frame.discrete_inputs;
  Rw.w_u8 b a.Scada.Field_frame.coils;
  Rw.w_u8 b a.Scada.Field_frame.input_registers;
  Rw.w_u8 b a.Scada.Field_frame.holding_registers;
  Rw.w_digest b a.Scada.Field_frame.map_digest

let r_field_advert r =
  let ctx = "field.advert" in
  let concentrator = Rw.r_u16 ctx r in
  let device = Rw.r_u32 ctx r in
  let discrete_inputs = Rw.r_u8 ctx r in
  let coils = Rw.r_u8 ctx r in
  let input_registers = Rw.r_u8 ctx r in
  let holding_registers = Rw.r_u8 ctx r in
  let map_digest = Rw.r_digest ctx r in
  {
    Scada.Field_frame.concentrator;
    device;
    discrete_inputs;
    coils;
    input_registers;
    holding_registers;
    map_digest;
  }

let w_field_event b (e : Scada.Field_frame.event) =
  Rw.w_u8 b (Scada.Field_frame.table_to_int e.Scada.Field_frame.table);
  Rw.w_u16 b e.Scada.Field_frame.address;
  Rw.w_u16 b e.Scada.Field_frame.value

let r_field_event r =
  let ctx = "field.event" in
  let table =
    let raw = Rw.r_u8 ctx r in
    match Scada.Field_frame.table_of_int raw with
    | Some t -> t
    | None -> raise (Rw.Fail (Rw.Unknown_tag { context = ctx; tag = raw }))
  in
  let address = Rw.r_u16 ctx r in
  let value = Rw.r_u16 ctx r in
  { Scada.Field_frame.table; address; value }

let w_field_report b (rep : Scada.Field_frame.report) =
  Rw.w_u16 b rep.Scada.Field_frame.concentrator;
  Rw.w_u32 b rep.Scada.Field_frame.device;
  Rw.w_u32 b rep.Scada.Field_frame.seq;
  Rw.w_list b w_field_event rep.Scada.Field_frame.events

let r_field_report r =
  let ctx = "field.report" in
  let concentrator = Rw.r_u16 ctx r in
  let device = Rw.r_u32 ctx r in
  let seq = Rw.r_u32 ctx r in
  let events = Rw.r_list ctx r r_field_event in
  { Scada.Field_frame.concentrator; device; seq; events }

let encode_field_advert = encode_with w_field_advert
let decode_field_advert = decode_with r_field_advert
let encode_field_report = encode_with w_field_report
let decode_field_report = decode_with r_field_report
