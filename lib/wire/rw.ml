type error =
  | Truncated of { context : string; wanted : int; available : int }
  | Bad_magic
  | Unsupported_version of int
  | Unknown_tag of { context : string; tag : int }
  | Trailing_garbage of { extra : int }
  | Auth_mismatch
  | Invalid_value of { context : string; detail : string }

let pp_error ppf = function
  | Truncated { context; wanted; available } ->
    Format.fprintf ppf "truncated at %s: wanted %d bytes, %d available" context
      wanted available
  | Bad_magic -> Format.fprintf ppf "bad magic"
  | Unsupported_version v -> Format.fprintf ppf "unsupported version %d" v
  | Unknown_tag { context; tag } ->
    Format.fprintf ppf "unknown tag 0x%02x in %s" tag context
  | Trailing_garbage { extra } ->
    Format.fprintf ppf "%d trailing bytes after message" extra
  | Auth_mismatch -> Format.fprintf ppf "authenticator mismatch"
  | Invalid_value { context; detail } ->
    Format.fprintf ppf "invalid value in %s: %s" context detail

let error_to_string e = Format.asprintf "%a" pp_error e

(* ------------------------------------------------------------------ *)
(* Writing.                                                            *)

type writer = Buffer.t

let w_u8 b v = Buffer.add_uint8 b (v land 0xff)
let w_u16 b v = Buffer.add_uint16_be b (v land 0xffff)
let w_u32 b v = Buffer.add_int32_be b (Int32.of_int (v land 0xffffffff))
let w_i64 b v = Buffer.add_int64_be b v
let w_bool b v = w_u8 b (if v then 1 else 0)
let w_digest b d = w_i64 b (Cryptosim.Digest.to_int64 d)

let w_bytes b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

let w_list b f l =
  let len = List.length l in
  if len > 0xffff then invalid_arg "Wire.Rw.w_list: list too long";
  w_u16 b len;
  List.iter (f b) l

let w_option b f = function
  | None -> w_u8 b 0
  | Some v ->
    w_u8 b 1;
    f b v

(* ------------------------------------------------------------------ *)
(* Reading.                                                            *)

type reader = { data : string; mutable pos : int }

exception Fail of error

let fail e = raise (Fail e)

let need ctx r n =
  let available = String.length r.data - r.pos in
  if n > available then fail (Truncated { context = ctx; wanted = n; available })

let r_u8 ctx r =
  need ctx r 1;
  let v = String.get_uint8 r.data r.pos in
  r.pos <- r.pos + 1;
  v

let r_u16 ctx r =
  need ctx r 2;
  let v = String.get_uint16_be r.data r.pos in
  r.pos <- r.pos + 2;
  v

let r_u32 ctx r =
  need ctx r 4;
  let v = Int32.to_int (String.get_int32_be r.data r.pos) land 0xffffffff in
  r.pos <- r.pos + 4;
  v

let r_i64 ctx r =
  need ctx r 8;
  let v = String.get_int64_be r.data r.pos in
  r.pos <- r.pos + 8;
  v

let r_bool ctx r =
  match r_u8 ctx r with
  | 0 -> false
  | 1 -> true
  | tag -> fail (Invalid_value { context = ctx; detail = Printf.sprintf "bool tag %d" tag })

let r_digest ctx r = Cryptosim.Digest.of_int64 (r_i64 ctx r)

let take ctx r n =
  if n < 0 then fail (Invalid_value { context = ctx; detail = "negative length" });
  need ctx r n;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let r_bytes ctx r =
  let len = r_u32 ctx r in
  take ctx r len

let r_list ctx r f =
  let count = r_u16 ctx r in
  (* Every element consumes at least one byte, so a count beyond the
     remaining bytes is lying — reject before allocating. *)
  need ctx r count;
  let rec go i acc = if i = count then List.rev acc else go (i + 1) (f r :: acc) in
  go 0 []

let r_option ctx r f = if r_bool ctx r then Some (f r) else None

let pos r = r.pos
let remaining r = String.length r.data - r.pos

let run_prefix s f =
  let r = { data = s; pos = 0 } in
  match f r with
  | v -> Ok (v, r.pos)
  | exception Fail e -> Error e
  | exception exn ->
    Error
      (Invalid_value
         { context = "decode"; detail = Printexc.to_string exn })

let run s f =
  match run_prefix s f with
  | Error _ as e -> e
  | Ok (v, consumed) ->
    let extra = String.length s - consumed in
    if extra = 0 then Ok v else Error (Trailing_garbage { extra })
