type 'snapshot source = {
  peers : Bft.Types.replica list;
  fetch : Bft.Types.replica -> 'snapshot option;
  digest_of : 'snapshot -> Cryptosim.Digest.t;
  newer : 'snapshot -> 'snapshot -> bool;
}

type 'snapshot outcome = Installed of 'snapshot | No_quorum of int

let select ~f source =
  if f < 0 then invalid_arg "State_transfer.select: negative f";
  (* Group fetched snapshots by digest and count vouchers per group. *)
  let groups : (int64, 'a * int) Hashtbl.t = Hashtbl.create 17 in
  List.iter
    (fun peer ->
      match source.fetch peer with
      | None -> ()
      | Some snap ->
        let key = Cryptosim.Digest.to_int64 (source.digest_of snap) in
        let count =
          match Hashtbl.find_opt groups key with Some (_, c) -> c | None -> 0
        in
        Hashtbl.replace groups key (snap, count + 1))
    source.peers;
  let all = Hashtbl.fold (fun _ entry acc -> entry :: acc) groups [] in
  let qualifying =
    List.filter_map (fun (snap, count) -> if count > f then Some snap else None) all
  in
  match qualifying with
  | [] ->
    No_quorum (List.fold_left (fun acc (_, count) -> max acc count) 0 all)
  | first :: rest ->
    (* Among digests vouched by f+1 peers, adopt the newest. *)
    Installed
      (List.fold_left
         (fun acc snap -> if source.newer snap acc then snap else acc)
         first rest)

(* ------------------------------------------------------------------ *)
(* Chunked snapshot transport.                                         *)

type chunk = {
  xfer_id : int;
  chunk_index : int;
  chunk_count : int;
  total_digest : Cryptosim.Digest.t;
  data : string;
}

let chunk_blob ~xfer_id ~chunk_bytes blob =
  if chunk_bytes <= 0 then
    invalid_arg "State_transfer.chunk_blob: chunk_bytes <= 0";
  let total = String.length blob in
  let count = max 1 ((total + chunk_bytes - 1) / chunk_bytes) in
  let digest = Cryptosim.Digest.of_string blob in
  List.init count (fun i ->
      let off = i * chunk_bytes in
      let len = min chunk_bytes (total - off) in
      {
        xfer_id;
        chunk_index = i;
        chunk_count = count;
        total_digest = digest;
        data = String.sub blob off len;
      })

(* ------------------------------------------------------------------ *)
(* Chunk re-request ARQ: bounded exponential backoff with
   deterministic jitter.

   A joining replica re-requests chunks it has not received.  A fixed
   re-request interval synchronises retries across chunks (and across
   joiners), hammering the very links whose loss caused the misses in
   the first place.  Backoff doubles the wait per attempt up to a cap;
   the jitter de-synchronises concurrent re-requests.  The jitter is
   *deterministic* — a hash of (xfer_id, chunk_index, attempt) — so a
   simulation trajectory is a pure function of its seed and the same
   transfer retries identically on every run. *)

type arq = { base_us : int; cap_us : int; max_attempts : int }

let default_arq = { base_us = 50_000; cap_us = 1_600_000; max_attempts = 10 }

(* Small integer mix (splitmix64-style finalizer) driving the jitter. *)
let mix x =
  let x = Int64.of_int x in
  let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 30)) 0xbf58476d1ce4e5b9L in
  let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 27)) 0x94d049bb133111ebL in
  Int64.to_int (Int64.logand (Int64.logxor x (Int64.shift_right_logical x 31)) 0x3fffffffL)

let rerequest_delay_us arq ~xfer_id ~chunk_index ~attempt =
  if arq.base_us <= 0 || arq.cap_us < arq.base_us then
    invalid_arg "State_transfer.rerequest_delay_us: bad arq parameters";
  if attempt < 0 then invalid_arg "State_transfer.rerequest_delay_us: attempt < 0";
  if attempt >= arq.max_attempts then None
  else begin
    (* Exponential growth, capped; shift bounded so 2^attempt cannot
       overflow before the cap applies. *)
    let backoff =
      if attempt >= 30 then arq.cap_us
      else min arq.cap_us (arq.base_us * (1 lsl attempt))
    in
    (* Jitter in [0, backoff/2): spreads retries without ever shrinking
       the wait below the deterministic floor. *)
    let span = max 1 (backoff / 2) in
    let j = mix ((((xfer_id * 8191) + chunk_index) * 131) + attempt) in
    Some (backoff + (j mod span))
  end

let reassemble chunks =
  match chunks with
  | [] -> Error "no chunks"
  | first :: _ ->
    let count = first.chunk_count in
    if count < 1 then Error "chunk_count < 1"
    else if List.length chunks <> count then
      Error
        (Printf.sprintf "expected %d chunks, got %d" count
           (List.length chunks))
    else if
      not
        (List.for_all
           (fun c ->
             c.xfer_id = first.xfer_id
             && c.chunk_count = count
             && Cryptosim.Digest.equal c.total_digest first.total_digest)
           chunks)
    then Error "chunks mix transfer sessions"
    else begin
      let sorted =
        List.sort (fun a b -> compare a.chunk_index b.chunk_index) chunks
      in
      let contiguous =
        List.for_all2
          (fun c i -> c.chunk_index = i)
          sorted
          (List.init count Fun.id)
      in
      if not contiguous then Error "missing or duplicated chunk index"
      else begin
        let blob = String.concat "" (List.map (fun c -> c.data) sorted) in
        if Cryptosim.Digest.equal (Cryptosim.Digest.of_string blob) first.total_digest
        then Ok blob
        else Error "reassembled blob fails digest check"
      end
    end
