(** State transfer for rejuvenated replicas.

    A replica returning from a clean reboot must adopt the current
    application state without trusting any single peer: it fetches
    snapshots from peers and installs one only when [f + 1] peers vouch
    for the same snapshot digest — at least one of them is correct.

    The module is protocol-agnostic: it works through a {!source}
    record the deployment wires to the live replicas (including
    whatever transfer delay the network imposes — fetches are
    callback-based). *)

type 'snapshot source = {
  peers : Bft.Types.replica list;  (** candidate donors, self excluded *)
  fetch : Bft.Types.replica -> 'snapshot option;
      (** read a peer's current snapshot; [None] if unreachable *)
  digest_of : 'snapshot -> Cryptosim.Digest.t;
  newer : 'snapshot -> 'snapshot -> bool;
      (** [newer a b] when [a] supersedes [b] (more executions) *)
}

type 'snapshot outcome =
  | Installed of 'snapshot  (** f+1 peers agreed on this snapshot *)
  | No_quorum of int  (** best agreement count achieved *)

(** [select ~f source] fetches from every peer and returns the newest
    snapshot vouched for by at least [f + 1] peers. Byzantine peers can
    lie about their snapshot; they cannot forge agreement. *)
val select : f:int -> 'snapshot source -> 'snapshot outcome

(** {1 Chunked snapshot transport}

    On the wire a snapshot travels as a sequence of bounded chunks, each
    carrying the digest of the {e whole} blob so the receiver can verify
    the reassembled snapshot against the digest its [f + 1] vouchers
    agreed on before installing anything. *)

type chunk = {
  xfer_id : int;  (** transfer session, so interleaved transfers keep apart *)
  chunk_index : int;  (** position in [0 .. chunk_count - 1] *)
  chunk_count : int;
  total_digest : Cryptosim.Digest.t;  (** digest of the full blob *)
  data : string;
}

(** [chunk_blob ~xfer_id ~chunk_bytes blob] splits [blob] into chunks of
    at most [chunk_bytes] payload bytes each. An empty blob yields one
    empty chunk (the transfer still announces its digest).
    @raise Invalid_argument if [chunk_bytes <= 0]. *)
val chunk_blob : xfer_id:int -> chunk_bytes:int -> string -> chunk list

(** [reassemble chunks] rebuilds the blob. Fails (with a reason) when
    chunks mix transfer sessions, indices are missing or duplicated,
    counts disagree, or the digest of the reassembled bytes does not
    match the announced [total_digest]. Order-insensitive. *)
val reassemble : chunk list -> (string, string) result

(** {1 Chunk re-request ARQ}

    Bounded exponential backoff with deterministic jitter for
    re-requesting chunks that never arrived.  The jitter is a hash of
    (xfer_id, chunk_index, attempt), keeping simulation trajectories a
    pure function of the seed while de-synchronising concurrent
    retries. *)

type arq = {
  base_us : int;  (** first re-request wait *)
  cap_us : int;  (** backoff ceiling *)
  max_attempts : int;  (** give up (and surface failure) after this many *)
}

(** 50 ms base, 1.6 s cap, 10 attempts. *)
val default_arq : arq

(** [rerequest_delay_us arq ~xfer_id ~chunk_index ~attempt] is the wait
    before re-request number [attempt] (0-based), or [None] once the
    attempt budget is exhausted.  Delay is [min (base * 2^attempt) cap]
    plus deterministic jitter in [0, backoff/2).
    @raise Invalid_argument on non-positive base, cap below base, or
    negative attempt. *)
val rerequest_delay_us :
  arq -> xfer_id:int -> chunk_index:int -> attempt:int -> int option
