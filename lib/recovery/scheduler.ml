type config = {
  rotation_period_us : int;
  recovery_duration_us : int;
  max_concurrent : int;
}

type t = {
  engine : Sim.Engine.t;
  config : config;
  mutable rotation_period_us : int;
      (* live copy of [config.rotation_period_us]; see
         [set_rotation_period] *)
  n : int;
  on_begin : Bft.Types.replica -> unit;
  on_complete : Bft.Types.replica -> unit;
  recovering : (Bft.Types.replica, unit) Hashtbl.t;
  mutable started : int;
  mutable completed : int;
  mutable timers : Sim.Engine.timer list;
  mutable running : bool;
}

let create ~engine ~config ~n ~on_begin ~on_complete =
  if config.max_concurrent < 1 then
    invalid_arg "Scheduler.create: max_concurrent < 1";
  if config.rotation_period_us <= 0 || config.recovery_duration_us <= 0 then
    invalid_arg "Scheduler.create: non-positive period";
  {
    engine;
    config;
    rotation_period_us = config.rotation_period_us;
    n;
    on_begin;
    on_complete;
    recovering = Hashtbl.create 7;
    started = 0;
    completed = 0;
    timers = [];
    running = false;
  }

let in_progress t =
  Hashtbl.fold (fun r () acc -> r :: acc) t.recovering [] |> List.sort compare

let recoveries_started t = t.started
let recoveries_completed t = t.completed
let is_recovering t r = Hashtbl.mem t.recovering r

let begin_recovery t r =
  if
    (not (Hashtbl.mem t.recovering r))
    && Hashtbl.length t.recovering < t.config.max_concurrent
  then begin
    Hashtbl.replace t.recovering r ();
    t.started <- t.started + 1;
    t.on_begin r;
    ignore
      (Sim.Engine.schedule t.engine ~delay_us:t.config.recovery_duration_us
         (fun () ->
           Hashtbl.remove t.recovering r;
           t.completed <- t.completed + 1;
           t.on_complete r)
        : Sim.Engine.timer);
    true
  end
  else false

let trigger_now t r = begin_recovery t r

let rotation_period_us t = t.rotation_period_us

let start t =
  if not t.running then begin
    t.running <- true;
    let slot = t.rotation_period_us / t.n in
    for r = 0 to t.n - 1 do
      (* Descending replica order: leader rotation moves views upward,
         so recovering downward avoids rejuvenating the current leader
         on every step (at most one leader recovery per rotation). *)
      let first = (t.n - r) * slot in
      let timer =
        Sim.Engine.schedule t.engine ~delay_us:first (fun () ->
            if t.running then begin
              ignore (begin_recovery t r : bool);
              let periodic =
                Sim.Engine.periodic t.engine
                  ~interval_us:t.rotation_period_us (fun () ->
                    if t.running then ignore (begin_recovery t r : bool))
              in
              t.timers <- periodic :: t.timers
            end)
      in
      t.timers <- timer :: t.timers
    done
  end

let stop t =
  t.running <- false;
  List.iter Sim.Engine.cancel t.timers;
  t.timers <- []

(* Hot-swap the rotation period (runtime tuning plane). A running
   rotation is torn down and re-staggered from now on the new cadence;
   in-flight recoveries complete on their own timers, untouched by
   [stop]. *)
let set_rotation_period t period_us =
  if period_us <= 0 then
    invalid_arg "Scheduler.set_rotation_period: non-positive period";
  if period_us <> t.rotation_period_us then begin
    let was_running = t.running in
    if was_running then stop t;
    t.rotation_period_us <- period_us;
    if was_running then start t
  end
