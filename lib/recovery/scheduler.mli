(** Proactive recovery scheduler.

    Rejuvenates every replica once per rotation period, staggered so at
    most [max_concurrent] (the system's [k]) recover simultaneously.
    Each recovery takes [recovery_duration_us] of downtime (clean-image
    reboot, key refresh, state transfer), during which the replica
    counts against the [2k] term of [n = 3f + 2k + 1].

    The scheduler drives callbacks only; what "down" and "back up" mean
    (faults flags, snapshots, diversity redraws) is wired by the
    deployment layer. Reactive (on-demand) recoveries share the same
    concurrency budget. *)

type config = {
  rotation_period_us : int;
      (** every replica is recovered once per rotation *)
  recovery_duration_us : int;
  max_concurrent : int;
}

type t

(** [create ~engine ~config ~n ~on_begin ~on_complete]. *)
val create :
  engine:Sim.Engine.t ->
  config:config ->
  n:int ->
  on_begin:(Bft.Types.replica -> unit) ->
  on_complete:(Bft.Types.replica -> unit) ->
  t

(** [start t] schedules the staggered rotation: replica [i] first
    recovers at [(i+1) * rotation_period / n], then periodically. *)
val start : t -> unit

(** [stop t] cancels future proactive recoveries (in-flight ones
    complete). *)
val stop : t -> unit

(** [rotation_period_us t] is the current (possibly hot-swapped)
    rotation period. *)
val rotation_period_us : t -> int

(** [set_rotation_period t period_us] swaps the rotation period on a
    live scheduler. If the rotation is running it is cancelled and
    re-staggered from the current virtual time on the new cadence
    (in-flight recoveries still complete). No-op when the period is
    unchanged.
    @raise Invalid_argument on a non-positive period. *)
val set_rotation_period : t -> int -> unit

(** [trigger_now t replica] requests an immediate (reactive) recovery;
    returns [false] if the replica is already recovering or the
    concurrency budget is exhausted. *)
val trigger_now : t -> Bft.Types.replica -> bool

val in_progress : t -> Bft.Types.replica list
val recoveries_started : t -> int
val recoveries_completed : t -> int

(** [is_recovering t replica]. *)
val is_recovering : t -> Bft.Types.replica -> bool
