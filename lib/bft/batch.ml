type policy = { max_batch : int; max_delay_us : int }

let singleton = { max_batch = 1; max_delay_us = 0 }

let validate p =
  if p.max_batch < 1 then
    invalid_arg "Bft.Batch.validate: max_batch must be >= 1";
  if p.max_delay_us < 0 then
    invalid_arg "Bft.Batch.validate: max_delay_us must be >= 0";
  p

let create ?(max_delay_us = 10_000) ~max_batch () =
  validate { max_batch; max_delay_us }

let is_singleton p = p.max_batch <= 1

let pp ppf p =
  Format.fprintf ppf "batch(max=%d,delay=%dus)" p.max_batch p.max_delay_us

(* ------------------------------------------------------------------ *)
(* Accumulator: the one batching state machine shared by the client
   endpoint (updates awaiting a Client_batch frame), the Prime replica
   (updates awaiting a Po_batch) and the PBFT leader (requests awaiting
   a batched pre-prepare).  Callers push items and flush when [full]
   says the size bound is reached or their deadline timer fires; the
   deadline for the oldest buffered item is exposed so the caller can
   arm exactly one timer per buffered generation. *)

type 'a acc = {
  mutable policy : policy;
      (* live-settable by the runtime tuning plane; see [set_policy] *)
  buf : 'a Queue.t;
  mutable oldest_us : int;  (** arrival time of the oldest buffered item *)
}

let acc policy = { policy; buf = Queue.create (); oldest_us = 0 }

let policy a = a.policy

(* Hot-swap the policy of a live accumulator. Shrinking [max_batch]
   below the buffered length makes [full] true immediately, and a
   shorter [max_delay_us] moves [deadline_us] earlier — possibly into
   the past. The accumulator itself never flushes (the flush action is
   caller-specific), so callers MUST check [full]/[deadline_us] after a
   swap and drain if due; their existing deadline timers remain safe
   because a stale timer re-reads [deadline_us] before flushing. *)
let set_policy a p =
  ignore (validate p : policy);
  a.policy <- p

let push a ~now v =
  if Queue.is_empty a.buf then a.oldest_us <- now;
  Queue.add v a.buf

let length a = Queue.length a.buf
let is_empty a = Queue.is_empty a.buf
let full a = Queue.length a.buf >= a.policy.max_batch

(** Absolute virtual time by which the buffered items must flush, or
    [None] when nothing is buffered. *)
let deadline_us a =
  if Queue.is_empty a.buf then None
  else Some (a.oldest_us + a.policy.max_delay_us)

(** Drain every buffered item, oldest first. *)
let take_all a =
  let items = List.of_seq (Queue.to_seq a.buf) in
  Queue.clear a.buf;
  items
