type t = {
  client : Types.client;
  client_seq : int;
  operation : string;
  submitted_us : int;
}

let create ~client ~client_seq ~operation ~submitted_us =
  if client_seq < 0 then invalid_arg "Update.create: negative client_seq";
  { client; client_seq; operation; submitted_us }

let key u = (u.client, u.client_seq)

(* Built with [^] rather than [Printf.sprintf]: this key is hashed for
   every simulated authenticator and format interpretation dominated the
   cost. The string is byte-identical to the sprintf it replaces. *)
let digest u =
  Cryptosim.Digest.of_string
    ("update:" ^ string_of_int u.client ^ ":" ^ string_of_int u.client_seq
   ^ ":" ^ u.operation)

let equal a b =
  a.client = b.client && a.client_seq = b.client_seq
  && String.equal a.operation b.operation

let compare_key a b = compare (key a) (key b)

let pp ppf u = Format.fprintf ppf "u(%d,%d)" u.client u.client_seq
