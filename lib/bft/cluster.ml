type ('r, 'm) t = {
  engine : Sim.Engine.t;
  n : int;
  mutable instances : 'r array;
  deliver : 'r -> from:Types.replica -> 'm -> unit;
  overrides : (Types.replica * Types.replica, int) Hashtbl.t;
  base_latency : Types.replica -> Types.replica -> int;
  mutable island : (Types.replica, unit) Hashtbl.t option;
  mutable messages : int;
}

let delay t src dst =
  match Hashtbl.find_opt t.overrides (src, dst) with
  | Some d -> d
  | None -> t.base_latency src dst

let crosses_partition t src dst =
  match t.island with
  | None -> false
  | Some island -> Hashtbl.mem island src <> Hashtbl.mem island dst

let create ~engine ~n ~latency_us ~make ~deliver =
  let t =
    {
      engine;
      n;
      instances = [||];
      deliver;
      overrides = Hashtbl.create 17;
      base_latency = latency_us;
      island = None;
      messages = 0;
    }
  in
  let env_of i =
    {
      Env.self = i;
      replica_count = n;
      send =
        (fun dst msg ->
          t.messages <- t.messages + 1;
          if not (crosses_partition t i dst) then begin
            let d = if dst = i then 0 else max 0 (delay t i dst) in
            ignore
              (Sim.Engine.schedule engine ~delay_us:d (fun () ->
                   if not (crosses_partition t i dst) then
                     t.deliver t.instances.(dst) ~from:i msg)
                : Sim.Engine.timer)
          end);
      now_us = (fun () -> Sim.Engine.now engine);
      set_timer = (fun delay_us f -> Sim.Engine.schedule engine ~delay_us f);
      trace = (fun _ -> ());
      telemetry = Telemetry.Sink.null;
    }
  in
  t.instances <- Array.init n (fun i -> make i (env_of i));
  t

let replica t i =
  if i < 0 || i >= t.n then invalid_arg "Cluster.replica: out of range";
  t.instances.(i)

let replicas t = Array.copy t.instances
let size t = t.n
let message_count t = t.messages

let set_link_delay t ~src ~dst delay_us =
  Hashtbl.replace t.overrides (src, dst) delay_us

let partition t ~island =
  let h = Hashtbl.create 7 in
  List.iter (fun r -> Hashtbl.replace h r ()) island;
  t.island <- Some h

let heal t = t.island <- None
