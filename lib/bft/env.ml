type 'msg t = {
  self : Types.replica;
  replica_count : int;
  send : Types.replica -> 'msg -> unit;
  now_us : unit -> int;
  set_timer : int -> (unit -> unit) -> Sim.Engine.timer;
  trace : string -> unit;
  telemetry : Telemetry.Sink.t;
}

let others env =
  List.filter (fun r -> r <> env.self) (List.init env.replica_count Fun.id)

let broadcast env msg = List.iter (fun r -> env.send r msg) (others env)

let broadcast_including_self env msg =
  List.iter (fun r -> env.send r msg) (List.init env.replica_count Fun.id)
