(** Execution environment handed to a replica protocol instance.

    A protocol state machine never talks to the network or the clock
    directly: it receives an ['msg env] whose closures the deployment
    layer wires to the overlay network and the simulation engine. Tests
    wire them to in-memory harnesses instead. *)

type 'msg t = {
  self : Types.replica;
  replica_count : int;
  send : Types.replica -> 'msg -> unit;
      (** unicast to one peer; sends to self must be delivered too *)
  now_us : unit -> int;
  set_timer : int -> (unit -> unit) -> Sim.Engine.timer;
      (** [set_timer delay_us callback] *)
  trace : string -> unit;  (** protocol-level trace hook *)
  telemetry : Telemetry.Sink.t;
      (** span sink for update-lifecycle milestones; {!Telemetry.Sink.null}
          when tracing is off *)
}

(** [broadcast env msg] sends to every replica except [env.self]. *)
val broadcast : 'msg t -> 'msg -> unit

(** [broadcast_including_self env msg] sends to every replica,
    [env.self] included. *)
val broadcast_including_self : 'msg t -> 'msg -> unit

(** [others env] lists all replicas except [env.self]. *)
val others : 'msg t -> Types.replica list
