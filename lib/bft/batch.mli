(** Batching policy for the ordering pipeline.

    An ordering slot may carry a {e batch} of updates instead of exactly
    one: the client endpoint aggregates updates into [Client_batch]
    frames, the Prime replica aggregates pre-ordering into [Po_batch],
    and the PBFT leader batches pre-prepares.  A batch flushes when it
    reaches [max_batch] items or when the oldest buffered item has
    waited [max_delay_us], whichever comes first.

    [singleton] ([max_batch = 1]) is the degenerate policy: every layer
    bypasses its accumulator entirely and emits the legacy single-update
    frames, bit-identical to the unbatched pipeline. *)

type policy = {
  max_batch : int;  (** flush when this many items are buffered (>= 1) *)
  max_delay_us : int;
      (** flush when the oldest buffered item has waited this long *)
}

(** The default: no batching, no timers, legacy frames. *)
val singleton : policy

(** Raises [Invalid_argument] on [max_batch < 1] or negative delay. *)
val validate : policy -> policy

val create : ?max_delay_us:int -> max_batch:int -> unit -> policy
val is_singleton : policy -> bool
val pp : Format.formatter -> policy -> unit

(** Per-layer accumulator: push items, flush on [full] or when the
    caller's timer passes [deadline_us]. *)
type 'a acc

val acc : policy -> 'a acc

(** [policy a] is the accumulator's current (possibly hot-swapped)
    policy. *)
val policy : 'a acc -> policy

(** [set_policy a p] swaps the live accumulator onto policy [p]
    (validated). Buffered items are kept: if the new [max_batch] is at
    or below the buffered length the accumulator becomes [full]
    immediately, and a shorter [max_delay_us] can move [deadline_us]
    into the past — the caller must check both after the swap and
    drain if due (the accumulator never flushes itself). Stale
    deadline timers stay safe: they re-check [deadline_us] before
    flushing.
    @raise Invalid_argument on an invalid policy. *)
val set_policy : 'a acc -> policy -> unit

val push : 'a acc -> now:int -> 'a -> unit
val length : 'a acc -> int
val is_empty : 'a acc -> bool
val full : 'a acc -> bool
val deadline_us : 'a acc -> int option
val take_all : 'a acc -> 'a list
