(** A register-mapped field device (the fleet's RTU model).

    Each device owns four Modbus register tables — discrete inputs,
    coils, input registers, holding registers — described by typed
    {!Point} descriptors. Input registers follow a deterministic
    bounded random walk (seeded per device via [Sim.Rng.derive]);
    discrete inputs flip rarely. {!tick} returns the
    report-by-exception events since the previous tick: analog points
    only report when they drift a deadband away from their last
    reported value.

    {!serve} is the slave side of a Modbus exchange against the tables,
    covering all eight function codes of {!Scada.Modbus} and answering
    out-of-range accesses with exception code 2. *)

type t

val discrete_inputs_count : int
val coils_count : int
val input_registers_count : int
val holding_registers_count : int

(** [create ~id ~concentrator ~seed] builds a device whose register-map
    parameters (nominals, spreads, deadbands) and process noise are a
    pure function of [seed]. *)
val create : id:int -> concentrator:int -> seed:int64 -> t

val id : t -> int

(** [map_digest t] is the digest over the device's point descriptors;
    it identifies the register map in the capability advertisement. *)
val map_digest : t -> Cryptosim.Digest.t

(** [advert t] is the capability-advertisement frame the device sends
    when its session links up. *)
val advert : t -> Scada.Field_frame.advert

(** [tick t] advances the process one scan interval and returns the
    exception events to report (possibly none). *)
val tick : t -> Scada.Field_frame.event list

(** [serve t req] answers a Modbus request from the register tables. *)
val serve : t -> Scada.Modbus.request -> Scada.Modbus.response

val holding_register : t -> address:int -> int option
val ticks : t -> int
val events_emitted : t -> int
val writes_applied : t -> int
