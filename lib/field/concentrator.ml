type config = {
  devices : int;
  scan_interval_us : int;
  phase_us : int;
  write_interval_us : int;
  keepalive_loss : float;
}

let default_config =
  {
    devices = 100;
    scan_interval_us = 200_000;
    phase_us = 0;
    write_interval_us = 1_000_000;
    keepalive_loss = 0.005;
  }

type frame =
  [ `Advert of Scada.Field_frame.advert | `Report of Scada.Field_frame.report ]

type t = {
  id : int;
  first_device : int;
  config : config;
  engine : Sim.Engine.t;
  shard : int;
  rng : Sim.Rng.t;  (* write-workload draws only *)
  devices : Device.t array;
  sessions : Session.t array;
  last_report : Scada.Field_frame.report option array;
  endpoint : Scada.Endpoint.t;
  charge : frame -> unit;
  mutable scan_timer : Sim.Engine.timer option;
  mutable write_timer : Sim.Engine.timer option;
  mutable running : bool;
  mutable round : int;
  mutable next_txn : int;
  mutable events_seen : int;
  mutable reports_accepted : int;
  mutable adverts_sent : int;
  mutable report_frames : int;
  mutable poll_bytes : int;
  mutable polls_sent : int;
  mutable writes_issued : int;
  mutable confirmed_events : int;
  mutable confirmed_writes : int;
  mutable on_complete : Bft.Update.t -> latency_us:int -> unit;
}

type stats = {
  device_count : int;
  rounds : int;
  events_seen : int;
  reports_accepted : int;
  dups_dropped : int;
  churn : int;
  adverts_sent : int;
  report_frames : int;
  polls_sent : int;
  poll_bytes : int;
  writes_issued : int;
  confirmed_events : int;
  confirmed_writes : int;
}

let note_complete (t : t) u ~latency_us:_ =
  match Scada.Op.of_update u with
  | Ok (Scada.Op.Field_report { events; _ }) ->
    t.confirmed_events <- t.confirmed_events + events
  | Ok (Scada.Op.Field_write { device; address; value; _ }) -> (
    (* Actuate only once the write is ordered and confirmed: gateway
       the ordered command into a Modbus multi-register write on the
       device's field link. *)
    let i = device - t.first_device in
    if i >= 0 && i < Array.length t.devices then begin
      t.next_txn <- t.next_txn + 1;
      let req =
        {
          Scada.Modbus.transaction = t.next_txn land 0xFFFF;
          unit_id = device land 0xFF;
          body = Scada.Modbus.Write_multiple_registers { start = address; values = [ value ] };
        }
      in
      let raw = Scada.Modbus.encode_request req in
      t.poll_bytes <- t.poll_bytes + String.length raw;
      match Scada.Modbus.decode_request raw with
      | Error _ -> ()
      | Ok dec -> (
        let resp =
          {
            Scada.Modbus.transaction = dec.Scada.Modbus.transaction;
            unit_id = dec.Scada.Modbus.unit_id;
            body = Device.serve t.devices.(i) dec.Scada.Modbus.body;
          }
        in
        let renc = Scada.Modbus.encode_response resp in
        t.poll_bytes <- t.poll_bytes + String.length renc;
        match Scada.Modbus.decode_response renc with
        | Ok { Scada.Modbus.body = Scada.Modbus.Registers_written _; _ } ->
          t.confirmed_writes <- t.confirmed_writes + 1
        | Ok _ | Error _ -> ())
    end)
  | Ok _ | Error _ -> ()

let create ?telemetry ?batch ?submit_batch ?(shard = 0) ~engine ~id ~client_id
    ~first_device ~seed ~group ~resubmit_timeout_us ~submit ~charge
    ~config:(config : config) ()
    =
  if config.devices <= 0 then
    invalid_arg "Concentrator.create: need at least one device";
  let endpoint =
    Scada.Endpoint.create ?telemetry ?batch ?submit_batch ~shard ~engine
      ~client_id ~group ~resubmit_timeout_us ~submit ()
  in
  let t =
    {
      id;
      first_device;
      config;
      engine;
      shard;
      rng = Sim.Rng.create (Sim.Rng.derive ~seed ~index:0);
      devices =
        Array.init config.devices (fun i ->
            Device.create ~id:(first_device + i) ~concentrator:id
              ~seed:(Sim.Rng.derive ~seed ~index:(1 + i)));
      sessions =
        Array.init config.devices (fun i ->
            Session.create
              ~seed:(Sim.Rng.derive ~seed ~index:(1 + config.devices + i))
              ~loss:config.keepalive_loss);
      last_report = Array.make config.devices None;
      endpoint;
      charge;
      scan_timer = None;
      write_timer = None;
      running = false;
      round = 0;
      next_txn = 0;
      events_seen = 0;
      reports_accepted = 0;
      adverts_sent = 0;
      report_frames = 0;
      poll_bytes = 0;
      polls_sent = 0;
      writes_issued = 0;
      confirmed_events = 0;
      confirmed_writes = 0;
      on_complete = (fun _ ~latency_us:_ -> ());
    }
  in
  Scada.Endpoint.set_on_complete endpoint (fun u ~latency_us ->
      note_complete t u ~latency_us;
      t.on_complete u ~latency_us);
  t

let endpoint t = t.endpoint
let id t = t.id
let device_count t = Array.length t.devices

let set_on_complete t f = t.on_complete <- f

(* Periodic integrity poll: a full read of one register table over the
   modeled Modbus link, alternating between the two "new" read function
   codes. Staggered so 1/8th of the fleet polls each round. *)
let integrity_poll (t : t) i =
  let dev = t.devices.(i) in
  t.next_txn <- t.next_txn + 1;
  let body =
    if (t.round + i) land 8 = 0 then
      Scada.Modbus.Read_input_registers
        { start = 0; count = Device.input_registers_count }
    else
      Scada.Modbus.Read_discrete_inputs
        { start = 0; count = Device.discrete_inputs_count }
  in
  let req =
    {
      Scada.Modbus.transaction = t.next_txn land 0xFFFF;
      unit_id = Device.id dev land 0xFF;
      body;
    }
  in
  let raw = Scada.Modbus.encode_request req in
  match Scada.Modbus.decode_request raw with
  | Error _ -> ()
  | Ok dec ->
    let resp =
      {
        Scada.Modbus.transaction = dec.Scada.Modbus.transaction;
        unit_id = dec.Scada.Modbus.unit_id;
        body = Device.serve dev dec.Scada.Modbus.body;
      }
    in
    let renc = Scada.Modbus.encode_response resp in
    t.polls_sent <- t.polls_sent + 1;
    t.poll_bytes <- t.poll_bytes + String.length raw + String.length renc

let scan_round (t : t) =
  t.round <- t.round + 1;
  let round_events = ref 0 in
  let round_devices = ref 0 in
  let checksum = ref 0 in
  for i = 0 to Array.length t.devices - 1 do
    let dev = t.devices.(i) and s = t.sessions.(i) in
    match Session.step s with
    | `Offline -> ()
    | `Relink ->
      (* Capability-advertisement handshake, then replay of the last
         report frame (the device cannot know it was delivered). The
         concentrator's sequence high-watermark drops the duplicate. *)
      t.charge (`Advert (Device.advert dev));
      t.adverts_sent <- t.adverts_sent + 1;
      (match t.last_report.(i) with
      | None -> ()
      | Some f ->
        t.charge (`Report f);
        t.report_frames <- t.report_frames + 1;
        ignore (Session.accept s ~seq:f.Scada.Field_frame.seq : bool))
    | `Online ->
      let events = Device.tick dev in
      if (t.round + i) mod 8 = 0 then integrity_poll t i;
      if events <> [] then begin
        let seq = Session.next_seq s in
        let f =
          {
            Scada.Field_frame.concentrator = t.id;
            device = Device.id dev;
            seq;
            events;
          }
        in
        t.charge (`Report f);
        t.report_frames <- t.report_frames + 1;
        t.last_report.(i) <- Some f;
        if Session.accept s ~seq then begin
          let n = List.length events in
          t.events_seen <- t.events_seen + n;
          t.reports_accepted <- t.reports_accepted + 1;
          round_events := !round_events + n;
          incr round_devices;
          checksum :=
            ((!checksum * 31) + Scada.Field_frame.report_checksum f)
            land 0x3FFF_FFFF
        end
      end
  done;
  (* Hierarchical aggregation: the whole round folds into one compact
     ordered operation, however many devices reported. *)
  if !round_events > 0 then
    ignore
      (Scada.Endpoint.send_op t.endpoint
         (Scada.Op.Field_report
            {
              concentrator = t.id;
              round = t.round;
              devices = !round_devices;
              events = !round_events;
              checksum = !checksum land 0x3FFF_FFFF;
            })
        : Bft.Update.t)

let issue_write (t : t) =
  let i = Sim.Rng.int t.rng (Array.length t.devices) in
  if Session.state t.sessions.(i) = Session.Up then begin
    let address = Sim.Rng.int t.rng Device.holding_registers_count in
    let value = Sim.Rng.int t.rng 0x10000 in
    t.writes_issued <- t.writes_issued + 1;
    ignore
      (Scada.Endpoint.send_op t.endpoint
         (Scada.Op.Field_write
            { concentrator = t.id; device = Device.id t.devices.(i); address; value })
        : Bft.Update.t)
  end

let start t =
  if not t.running then begin
    t.running <- true;
    Scada.Endpoint.start t.endpoint;
    t.scan_timer <-
      Some
        (Sim.Engine.schedule ~shard:t.shard t.engine
           ~delay_us:(t.config.phase_us + t.config.scan_interval_us)
           (fun () ->
             scan_round t;
             t.scan_timer <-
               Some
                 (Sim.Engine.periodic ~shard:t.shard t.engine
                    ~interval_us:t.config.scan_interval_us (fun () ->
                      scan_round t))));
    if t.config.write_interval_us > 0 then
      t.write_timer <-
        Some
          (Sim.Engine.schedule ~shard:t.shard t.engine
             ~delay_us:(t.config.phase_us + t.config.write_interval_us)
             (fun () ->
               issue_write t;
               t.write_timer <-
                 Some
                   (Sim.Engine.periodic ~shard:t.shard t.engine
                      ~interval_us:t.config.write_interval_us (fun () ->
                        issue_write t))))
  end

let stop t =
  t.running <- false;
  Option.iter Sim.Engine.cancel t.scan_timer;
  Option.iter Sim.Engine.cancel t.write_timer;
  t.scan_timer <- None;
  t.write_timer <- None

let stats (t : t) =
  {
    device_count = Array.length t.devices;
    rounds = t.round;
    events_seen = t.events_seen;
    reports_accepted = t.reports_accepted;
    dups_dropped =
      Array.fold_left (fun acc s -> acc + Session.dups_dropped s) 0 t.sessions;
    churn = Array.fold_left (fun acc s -> acc + Session.churn s) 0 t.sessions;
    adverts_sent = t.adverts_sent;
    report_frames = t.report_frames;
    polls_sent = t.polls_sent;
    poll_bytes = t.poll_bytes;
    writes_issued = t.writes_issued;
    confirmed_events = t.confirmed_events;
    confirmed_writes = t.confirmed_writes;
  }

let handle_reply t reply =
  ignore (Scada.Endpoint.handle_reply t.endpoint reply : Scada.Reply.body option)

let device t i = t.devices.(i)
