type table = Scada.Field_frame.table =
  | Discrete_input
  | Coil
  | Input_register
  | Holding_register

type t = {
  table : table;
  address : int;
  nominal : int;
  spread : int;
  step : int;
  deadband : int;
}

let lo p = max 0 (p.nominal - p.spread)
let hi p = min 0xFFFF (p.nominal + p.spread)

let discrete ~table ~address =
  { table; address; nominal = 0; spread = 1; step = 1; deadband = 1 }

let analog ~table ~address ~nominal ~spread =
  let spread = max 1 spread in
  {
    table;
    address;
    nominal;
    spread;
    step = max 1 (spread / 8);
    deadband = max 1 (spread / 4);
  }

let render p =
  Printf.sprintf "%s@%d:n%d,s%d,st%d,db%d"
    (Scada.Field_frame.table_name p.table)
    p.address p.nominal p.spread p.step p.deadband

let map_digest points =
  Array.fold_left
    (fun acc p ->
      Cryptosim.Digest.combine acc (Cryptosim.Digest.of_string (render p)))
    (Cryptosim.Digest.of_string "field-map-genesis")
    points

let pp ppf p = Format.pp_print_string ppf (render p)
