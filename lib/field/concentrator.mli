(** Per-substation data concentrator: the aggregation tier between a
    device fleet and the intrusion-tolerant core.

    A concentrator owns [config.devices] register-mapped devices
    ({!Device}) and one link session per device ({!Session}). Every
    [scan_interval_us] it runs a scan round:

    - steps each session (keep-alive / link-down / relink);
    - ticks each linked device and collects its report-by-exception
      events into a per-device report frame (charged to the wire
      ledger via [charge]);
    - deduplicates replayed frames on the session sequence watermark;
    - folds the whole round into {e one} compact
      [Scada.Op.Field_report] aggregate submitted through its
      {!Scada.Endpoint} — so a thousand devices cost one ordered
      operation per round, and the endpoint's batch policy further
      packs aggregates into [Client_batch] frames.

    A separate write workload issues [Scada.Op.Field_write] operations;
    the device is actuated (a Modbus [0x10] write on the field link)
    only after the ordered write is confirmed — confirmed-write count
    is therefore an end-to-end metric through the BFT core.

    Determinism: all randomness (device processes, keep-alive loss,
    write workload) derives from [seed] via [Sim.Rng.derive]; timers
    are tagged with [shard], so fleets compose with site-sharded
    parallel runs. *)

type config = {
  devices : int;
  scan_interval_us : int;
  phase_us : int;  (** stagger offset for this concentrator's timers *)
  write_interval_us : int;  (** 0 disables the write workload *)
  keepalive_loss : float;
}

val default_config : config

type frame =
  [ `Advert of Scada.Field_frame.advert | `Report of Scada.Field_frame.report ]

type t

type stats = {
  device_count : int;
  rounds : int;
  events_seen : int;
  reports_accepted : int;
  dups_dropped : int;
  churn : int;
  adverts_sent : int;
  report_frames : int;
  polls_sent : int;
  poll_bytes : int;  (** local Modbus link bytes (integrity polls, writes) *)
  writes_issued : int;
  confirmed_events : int;
  confirmed_writes : int;
}

(** [create ~engine ~id ~client_id ~first_device ~seed ~group
    ~resubmit_timeout_us ~submit ~charge ~config ()] — [charge]
    receives every field-link frame (adverts and reports) for wire
    accounting; [first_device] is the global id of device 0. *)
val create :
  ?telemetry:Telemetry.Sink.t ->
  ?batch:Bft.Batch.policy ->
  ?submit_batch:(Bft.Update.t list -> unit) ->
  ?shard:int ->
  engine:Sim.Engine.t ->
  id:int ->
  client_id:Bft.Types.client ->
  first_device:int ->
  seed:int64 ->
  group:Cryptosim.Threshold.group ->
  resubmit_timeout_us:int ->
  submit:(attempt:int -> Bft.Update.t -> unit) ->
  charge:(frame -> unit) ->
  config:config ->
  unit ->
  t

(** [start t] arms the scan and write timers (first round fires at
    [phase_us + scan_interval_us]). *)
val start : t -> unit

val stop : t -> unit
val endpoint : t -> Scada.Endpoint.t
val id : t -> int
val device_count : t -> int
val device : t -> int -> Device.t
val handle_reply : t -> Scada.Reply.t -> unit

(** [set_on_complete t f] — [f] fires after the concentrator's own
    completion bookkeeping (confirmed-event tally, deferred
    actuation). *)
val set_on_complete : t -> (Bft.Update.t -> latency_us:int -> unit) -> unit

val stats : t -> stats
