(** Typed point descriptors for the register-mapped device model.

    A point descriptor says which register table a point lives in, at
    which address, and — for analog points — the physical envelope its
    value walks inside ([nominal ± spread]), the per-tick walk [step],
    and the report-by-exception [deadband]: a device only reports an
    analog point when it has drifted at least [deadband] counts from
    the last reported value. *)

type table = Scada.Field_frame.table =
  | Discrete_input
  | Coil
  | Input_register
  | Holding_register

type t = {
  table : table;
  address : int;
  nominal : int;
  spread : int;
  step : int;
  deadband : int;
}

(** [lo p] / [hi p] are the clamped physical envelope bounds (register
    values are u16, so the envelope is also clipped to [0, 0xFFFF]). *)
val lo : t -> int

val hi : t -> int

(** [discrete ~table ~address] is a single-bit point descriptor. *)
val discrete : table:table -> address:int -> t

(** [analog ~table ~address ~nominal ~spread] derives step and deadband
    from the spread ([spread/8] and [spread/4], floored at 1). *)
val analog : table:table -> address:int -> nominal:int -> spread:int -> t

(** [map_digest points] chains every descriptor into a digest — the
    register-map identity a device advertises in its capability
    handshake. *)
val map_digest : t array -> Cryptosim.Digest.t

val pp : Format.formatter -> t -> unit
