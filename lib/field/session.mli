(** Per-device session/link state between a device and its
    concentrator.

    The link is a three-state machine stepped once per scan round:

    {v Linking --(handshake)--> Up --(lost keep-alive)--> Down
       Down --(back-off)--> Linking v}

    A fresh session starts in [Linking], so the first round performs
    the capability-advertisement handshake. While [Up], each round's
    keep-alive is lost with probability [loss] (drawn from the
    session's own derived RNG — deterministic), which trips the
    timeout and drops the link; one silent back-off round later the
    session re-handshakes ([`Relink]), at which point the device
    re-adverts its register map and replays its last report frame.

    [churn] counts link-state transitions (down events plus relinks).
    Reports carry a per-session sequence number; {!accept} keeps a
    high-watermark and drops replayed duplicates. *)

type state = Up | Down | Linking
type t

val create : seed:int64 -> loss:float -> t
val state : t -> state

(** [step t] advances one scan round: [`Online] — link is up, report
    normally; [`Relink] — handshake round, re-advert and replay;
    [`Offline] — link is down, nothing flows. *)
val step : t -> [ `Online | `Relink | `Offline ]

(** [next_seq t] allocates the next report sequence number. *)
val next_seq : t -> int

(** [accept t ~seq] is [true] iff [seq] advances the session's
    high-watermark; duplicates are counted and rejected. *)
val accept : t -> seq:int -> bool

(** [churn t] — cumulative link-state transitions. *)
val churn : t -> int

val dups_dropped : t -> int
