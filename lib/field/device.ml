(* Fixed per-device profile: small tables in the shape cc-mek-scada
   style RTUs advertise (a handful of status bits, breaker coils, sensor
   registers and setpoints). Counts are compile-time constants so a
   100k-device fleet costs a few small arrays per device. *)
let discrete_inputs_count = 8
let coils_count = 4
let input_registers_count = 6
let holding_registers_count = 4

type t = {
  id : int;
  concentrator : int;
  rng : Sim.Rng.t;
  discrete_inputs : bool array;
  coils : bool array;
  input_registers : int array;
  holding_registers : int array;
  analog_points : Point.t array;  (* descriptors for the input registers *)
  last_reported : int array;  (* last value reported per input register *)
  map_digest : Cryptosim.Digest.t;
  mutable ticks : int;
  mutable events_emitted : int;
  mutable writes_applied : int;
}

let create ~id ~concentrator ~seed =
  let rng = Sim.Rng.create seed in
  let analog_points =
    Array.init input_registers_count (fun address ->
        let nominal = 2_000 + Sim.Rng.int rng 40_000 in
        let spread = 400 + Sim.Rng.int rng 4_000 in
        Point.analog ~table:Point.Input_register ~address ~nominal ~spread)
  in
  let all_points =
    Array.concat
      [
        Array.init discrete_inputs_count (fun address ->
            Point.discrete ~table:Point.Discrete_input ~address);
        Array.init coils_count (fun address ->
            Point.discrete ~table:Point.Coil ~address);
        analog_points;
        Array.init holding_registers_count (fun address ->
            Point.analog ~table:Point.Holding_register ~address ~nominal:0x800
              ~spread:0x7FF);
      ]
  in
  {
    id;
    concentrator;
    rng;
    discrete_inputs = Array.make discrete_inputs_count false;
    coils = Array.make coils_count false;
    input_registers = Array.map (fun p -> p.Point.nominal) analog_points;
    holding_registers = Array.make holding_registers_count 0x800;
    analog_points;
    last_reported = Array.map (fun p -> p.Point.nominal) analog_points;
    map_digest = Point.map_digest all_points;
    ticks = 0;
    events_emitted = 0;
    writes_applied = 0;
  }

let id t = t.id
let map_digest t = t.map_digest
let ticks t = t.ticks
let events_emitted t = t.events_emitted
let writes_applied t = t.writes_applied

let advert t =
  {
    Scada.Field_frame.concentrator = t.concentrator;
    device = t.id;
    discrete_inputs = discrete_inputs_count;
    coils = coils_count;
    input_registers = input_registers_count;
    holding_registers = holding_registers_count;
    map_digest = t.map_digest;
  }

(* Probability a status bit flips on one tick. *)
let flip_probability = 0.01

let tick t =
  t.ticks <- t.ticks + 1;
  let events = ref [] in
  (* Analog process: bounded random walk with mean reversion, reported
     by exception when the drift since the last report crosses the
     point's deadband. *)
  Array.iteri
    (fun i p ->
      let v = t.input_registers.(i) in
      let drift = Sim.Rng.int t.rng ((2 * p.Point.step) + 1) - p.Point.step in
      let walked = v + drift + ((p.Point.nominal - v) / 16) in
      let clamped = max (Point.lo p) (min (Point.hi p) walked) in
      t.input_registers.(i) <- clamped;
      if abs (clamped - t.last_reported.(i)) >= p.Point.deadband then begin
        t.last_reported.(i) <- clamped;
        events :=
          {
            Scada.Field_frame.table = Scada.Field_frame.Input_register;
            address = i;
            value = clamped;
          }
          :: !events
      end)
    t.analog_points;
  (* Status bits: rare spontaneous flips, always exception-reported. *)
  for i = 0 to discrete_inputs_count - 1 do
    if Sim.Rng.bernoulli t.rng flip_probability then begin
      t.discrete_inputs.(i) <- not t.discrete_inputs.(i);
      events :=
        {
          Scada.Field_frame.table = Scada.Field_frame.Discrete_input;
          address = i;
          value = (if t.discrete_inputs.(i) then 1 else 0);
        }
        :: !events
    end
  done;
  let events = List.rev !events in
  t.events_emitted <- t.events_emitted + List.length events;
  events

(* The device side of a Modbus exchange against the register tables.
   Out-of-range accesses answer with exception code 2 (illegal data
   address), as a real slave would. *)
let in_range arr start count =
  start >= 0 && count >= 0 && start + count <= Array.length arr

let serve t (req : Scada.Modbus.request) : Scada.Modbus.response =
  let illegal function_code =
    Scada.Modbus.Exception_response { function_code; exception_code = 2 }
  in
  match req with
  | Scada.Modbus.Read_coils { start; count } ->
    if in_range t.coils start count then
      Scada.Modbus.Coils (List.init count (fun i -> t.coils.(start + i)))
    else illegal 0x01
  | Scada.Modbus.Read_discrete_inputs { start; count } ->
    if in_range t.discrete_inputs start count then
      Scada.Modbus.Discrete_inputs
        (List.init count (fun i -> t.discrete_inputs.(start + i)))
    else illegal 0x02
  | Scada.Modbus.Read_holding_registers { start; count } ->
    if in_range t.holding_registers start count then
      Scada.Modbus.Holding_registers
        (List.init count (fun i -> t.holding_registers.(start + i)))
    else illegal 0x03
  | Scada.Modbus.Read_input_registers { start; count } ->
    if in_range t.input_registers start count then
      Scada.Modbus.Input_registers
        (List.init count (fun i -> t.input_registers.(start + i)))
    else illegal 0x04
  | Scada.Modbus.Write_single_coil { address; value } ->
    if in_range t.coils address 1 then begin
      t.coils.(address) <- value;
      t.writes_applied <- t.writes_applied + 1;
      Scada.Modbus.Coil_written { address; value }
    end
    else illegal 0x05
  | Scada.Modbus.Write_single_register { address; value } ->
    if in_range t.holding_registers address 1 then begin
      t.holding_registers.(address) <- value land 0xFFFF;
      t.writes_applied <- t.writes_applied + 1;
      Scada.Modbus.Register_written { address; value }
    end
    else illegal 0x06
  | Scada.Modbus.Write_multiple_coils { start; values } ->
    let count = List.length values in
    if in_range t.coils start count then begin
      List.iteri (fun i v -> t.coils.(start + i) <- v) values;
      t.writes_applied <- t.writes_applied + 1;
      Scada.Modbus.Coils_written { start; count }
    end
    else illegal 0x0F
  | Scada.Modbus.Write_multiple_registers { start; values } ->
    let count = List.length values in
    if in_range t.holding_registers start count then begin
      List.iteri
        (fun i v -> t.holding_registers.(start + i) <- v land 0xFFFF)
        values;
      t.writes_applied <- t.writes_applied + 1;
      Scada.Modbus.Registers_written { start; count }
    end
    else illegal 0x10

let holding_register t ~address =
  if address >= 0 && address < Array.length t.holding_registers then
    Some t.holding_registers.(address)
  else None
