type state = Up | Down | Linking

type t = {
  rng : Sim.Rng.t;
  loss : float;
  mutable state : state;
  mutable churn : int;
  mutable next_seq : int;
  mutable last_accepted : int;
  mutable dups_dropped : int;
}

(* A fresh session starts in [Linking]: the first scan round performs
   the capability-advertisement handshake before any report flows. *)
let create ~seed ~loss =
  {
    rng = Sim.Rng.create seed;
    loss;
    state = Linking;
    churn = 0;
    next_seq = 0;
    last_accepted = -1;
    dups_dropped = 0;
  }

let state t = t.state
let churn t = t.churn

let step t =
  match t.state with
  | Up ->
    (* The keep-alive runs at scan cadence; a lost keep-alive (with
       probability [loss]) trips the link-down timeout. *)
    if t.loss > 0. && Sim.Rng.bernoulli t.rng t.loss then begin
      t.state <- Down;
      t.churn <- t.churn + 1;
      `Offline
    end
    else `Online
  | Down ->
    (* One silent round of timeout back-off, then re-handshake. *)
    t.state <- Linking;
    `Offline
  | Linking ->
    t.state <- Up;
    t.churn <- t.churn + 1;
    `Relink

let next_seq t =
  let s = t.next_seq in
  t.next_seq <- t.next_seq + 1;
  s

let accept t ~seq =
  if seq > t.last_accepted then begin
    t.last_accepted <- seq;
    true
  end
  else begin
    t.dups_dropped <- t.dups_dropped + 1;
    false
  end

let dups_dropped t = t.dups_dropped
