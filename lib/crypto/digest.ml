type t = int64

(* FNV-1a, 64-bit. The running hash is tracked as two 32-bit limbs held
   in native ints: without flambda every [Int64] operation allocates a
   boxed value, which made this — the innermost loop of every simulated
   authenticator — a dominant allocation site. The limb arithmetic is
   bit-exact with the Int64 formulation: with
   [fnv_prime = 0x100000001b3 = 2^40 + 0x1b3] and state [(hi:lo)],

     (hi:lo) * prime mod 2^64  has
       lo' = (lo * 0x1b3) mod 2^32
       hi' = (hi * 0x1b3 + carry + lo * 2^8) mod 2^32,
       carry = (lo * 0x1b3) / 2^32

   (the 2^40 term only reaches the high limb), and every intermediate
   fits comfortably in a 63-bit native int. The offset basis
   0xcbf29ce484222325 splits into hi = 0xcbf29ce4, lo = 0x84222325. *)

let mask32 = 0xFFFFFFFF
let prime_low = 0x1b3
let offset_hi = 0xcbf29ce4
let offset_lo = 0x84222325

let[@inline] mix hi lo c =
  let l = !lo lxor c in
  let p = l * prime_low in
  lo := p land mask32;
  hi := ((!hi * prime_low) + (p lsr 32) + (l lsl 8)) land mask32

let[@inline] join hi lo =
  Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo)

let of_string s =
  let hi = ref offset_hi and lo = ref offset_lo in
  for i = 0 to String.length s - 1 do
    mix hi lo (Char.code (String.unsafe_get s i))
  done;
  join !hi !lo

(* Equivalent to hashing the 16 big-endian bytes of [a] then [b], as the
   previous implementation did via an intermediate [Bytes.t]. *)
let combine a b =
  let hi = ref offset_hi and lo = ref offset_lo in
  let feed v =
    let v_hi = Int64.to_int (Int64.shift_right_logical v 32) land mask32 in
    let v_lo = Int64.to_int v land mask32 in
    mix hi lo (v_hi lsr 24);
    mix hi lo ((v_hi lsr 16) land 0xff);
    mix hi lo ((v_hi lsr 8) land 0xff);
    mix hi lo (v_hi land 0xff);
    mix hi lo (v_lo lsr 24);
    mix hi lo ((v_lo lsr 16) land 0xff);
    mix hi lo ((v_lo lsr 8) land 0xff);
    mix hi lo (v_lo land 0xff)
  in
  feed a;
  feed b;
  join !hi !lo

let equal = Int64.equal
let compare = Int64.compare
let to_hex t = Printf.sprintf "%016Lx" t
let to_int64 t = t
let of_int64 v = v
let pp ppf t = Format.pp_print_string ppf (to_hex t)
