type t = int64

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let of_string s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

let combine a b =
  let buf = Bytes.create 16 in
  Bytes.set_int64_be buf 0 a;
  Bytes.set_int64_be buf 8 b;
  of_string (Bytes.to_string buf)

let equal = Int64.equal
let compare = Int64.compare
let to_hex t = Printf.sprintf "%016Lx" t
let to_int64 t = t
let of_int64 v = v
let pp ppf t = Format.pp_print_string ppf (to_hex t)
