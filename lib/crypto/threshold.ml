type group = {
  group_id : int64;
  members : Keyring.principal list;
  threshold : int;
}

type share = {
  member : Keyring.principal;
  share_digest : Digest.t;
  tag : Digest.t;
}

type combined = { combined_digest : Digest.t; combined_tag : Digest.t }

type cost = { share_us : int; share_verify_us : int; combine_us : int; verify_us : int }

let default_cost = { share_us = 900; share_verify_us = 80; combine_us = 300; verify_us = 60 }

let create_group ~seed ~members ~threshold =
  let n = List.length members in
  if threshold < 1 || threshold > n then
    invalid_arg "Threshold.create_group: threshold out of range";
  let id_src =
    Printf.sprintf "group:%Ld:%s:%d" seed
      (String.concat "," (List.map string_of_int members))
      threshold
  in
  { group_id = Digest.to_int64 (Digest.of_string id_src); members; threshold }

let threshold g = g.threshold
let members g = g.members

(* Plain concatenation: signed and verified once per reply share, so
   sprintf's format interpretation showed up in profiles. Byte-identical
   to the sprintf it replaces. *)
let share_tag g member digest =
  Digest.of_string
    ("share:" ^ Int64.to_string g.group_id ^ ":" ^ string_of_int member ^ ":"
   ^ Int64.to_string (Digest.to_int64 digest))

let sign_share g ~member digest =
  if not (List.mem member g.members) then
    invalid_arg "Threshold.sign_share: not a member";
  { member; share_digest = digest; tag = share_tag g member digest }

let corrupt_share s = { s with tag = Digest.combine s.tag s.tag }

let verify_share g ~digest s =
  Digest.equal s.share_digest digest
  && List.mem s.member g.members
  && Digest.equal s.tag (share_tag g s.member digest)

let share_member s = s.member
let share_repr s = (s.member, s.share_digest, s.tag)
let share_of_repr ~member ~digest ~tag = { member; share_digest = digest; tag }

let combined_tag g digest =
  Digest.of_string
    ("combined:" ^ Int64.to_string g.group_id ^ ":"
   ^ Int64.to_string (Digest.to_int64 digest))

let combine g ~digest shares =
  let valid = List.filter (verify_share g ~digest) shares in
  let distinct =
    List.sort_uniq compare (List.map (fun s -> s.member) valid)
  in
  if List.length distinct >= g.threshold then
    Some { combined_digest = digest; combined_tag = combined_tag g digest }
  else None

let verify g ~digest c =
  Digest.equal c.combined_digest digest
  && Digest.equal c.combined_tag (combined_tag g digest)
