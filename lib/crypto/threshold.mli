(** (t, n) threshold signatures.

    Spire's SCADA master replicas threshold-sign outgoing state updates
    so that proxies and HMIs validate one combined signature instead of
    collecting f+1 matching replies. We simulate the scheme structurally:
    each replica produces a {e share}; any [threshold] distinct valid
    shares over the same digest combine into a group signature that
    verifies against the group's public identity. Fewer than [threshold]
    shares, shares over different digests, or duplicated signers do not
    combine. *)

type group
(** Public parameters of a threshold group. *)

type share
type combined

(** [create_group ~seed ~members ~threshold] creates a group over the
    given member principals requiring [threshold] shares.
    @raise Invalid_argument if [threshold] is not in [1 .. #members]. *)
val create_group :
  seed:int64 -> members:Keyring.principal list -> threshold:int -> group

val threshold : group -> int
val members : group -> Keyring.principal list

(** [sign_share group ~member digest] produces [member]'s share.
    @raise Invalid_argument if [member] is not in the group. *)
val sign_share : group -> member:Keyring.principal -> Digest.t -> share

(** [corrupt_share share] flips the share's tag — what a Byzantine
    replica contributes. Verification rejects it. *)
val corrupt_share : share -> share

(** [verify_share group ~digest share] checks a single share. *)
val verify_share : group -> digest:Digest.t -> share -> bool

(** [share_member share] is the claimed producer. *)
val share_member : share -> Keyring.principal

(** [share_repr share] is the share's transportable representation:
    (claimed member, signed digest, share tag). Wire codecs serialise
    shares through this triple. *)
val share_repr : share -> Keyring.principal * Digest.t * Digest.t

(** [share_of_repr ~member ~digest ~tag] rebuilds a share from its wire
    representation. Decoding does not confer validity: a share forged or
    damaged in transit still fails {!verify_share}. *)
val share_of_repr :
  member:Keyring.principal -> digest:Digest.t -> tag:Digest.t -> share

(** [combine group ~digest shares] combines [shares] into a group
    signature. Returns [None] when fewer than [threshold group] valid
    shares from distinct members over [digest] are present. *)
val combine : group -> digest:Digest.t -> share list -> combined option

(** [verify group ~digest combined] validates a combined signature. *)
val verify : group -> digest:Digest.t -> combined -> bool

(** CPU cost model: share sign / share verify / combine / combined
    verify, in microseconds. *)
type cost = { share_us : int; share_verify_us : int; combine_us : int; verify_us : int }

val default_cost : cost
