(** Message digests for the simulated cryptography layer.

    A digest is a 64-bit FNV-1a hash. It is obviously not
    collision-resistant against a real adversary; in this simulation the
    adversary is a model, and what matters is that digests are
    deterministic, cheap, and distinct for distinct protocol messages in
    practice. *)

type t

(** [of_string s] hashes the bytes of [s]. *)
val of_string : string -> t

(** [combine a b] hashes the concatenation of two digests (Merkle-style
    chaining, used for checkpoint chains and threshold signatures). *)
val combine : t -> t -> t

(** [equal a b] is constant-time-irrelevant structural equality. *)
val equal : t -> t -> bool

val compare : t -> t -> int

(** [to_hex t] is a 16-character lowercase hex rendering. *)
val to_hex : t -> string

(** [to_int64 t] exposes the raw 64-bit value (for hashing into tables). *)
val to_int64 : t -> int64

(** [of_int64 v] reconstructs a digest from its raw value — the inverse
    of {!to_int64}, used by wire codecs that transport digests as eight
    big-endian bytes. *)
val of_int64 : int64 -> t

val pp : Format.formatter -> t -> unit
