type row = {
  phase : Span.phase;
  count : int;
  mean_us : float;
  p50_us : float;
  p99_us : float;
}

type t = {
  rows : row list;
  e2e : row option;
  sum_mean_us : float;
  delta_us : float;
  reconciled : bool;
}

let tolerance_us = 1.0

let lifecycle_phases =
  [
    Span.Batch_wait; Span.Ingress; Span.Preorder; Span.Ordering;
    Span.Execution; Span.Reply;
  ]

let row_of_phase sink phase =
  let h = Sink.hist sink phase in
  let count = Stats.Histogram.count h in
  if count = 0 then None
  else
    Some
      {
        phase;
        count;
        mean_us = Stats.Histogram.mean h;
        p50_us = Stats.Histogram.percentile h 50.;
        p99_us = Stats.Histogram.percentile h 99.;
      }

let build sink =
  let rows = List.filter_map (row_of_phase sink) lifecycle_phases in
  let e2e = row_of_phase sink Span.End_to_end in
  let sum_mean_us =
    List.fold_left (fun acc r -> acc +. r.mean_us) 0. rows
  in
  let delta_us =
    match e2e with Some e -> sum_mean_us -. e.mean_us | None -> 0.
  in
  { rows; e2e; sum_mean_us; delta_us; reconciled = Float.abs delta_us <= tolerance_us }

let phase_row t phase = List.find_opt (fun r -> r.phase = phase) t.rows

let phase_share t phase =
  match (t.e2e, phase_row t phase) with
  | Some e, Some r when e.mean_us > 0. -> r.mean_us /. e.mean_us
  | _ -> 0.

let f1 v = Printf.sprintf "%.1f" v

let to_table ?(title = "Latency attribution (µs, virtual)") t =
  let table =
    Stats.Table.create ~title
      ~columns:[ "phase"; "count"; "mean"; "p50"; "p99"; "share" ]
  in
  let e2e_mean = match t.e2e with Some e -> e.mean_us | None -> 0. in
  let share mean =
    if e2e_mean <= 0. then "-"
    else Printf.sprintf "%4.1f%%" (100. *. mean /. e2e_mean)
  in
  List.iter
    (fun r ->
      Stats.Table.add_row table
        [
          Span.phase_name r.phase;
          string_of_int r.count;
          f1 r.mean_us;
          f1 r.p50_us;
          f1 r.p99_us;
          share r.mean_us;
        ])
    t.rows;
  Stats.Table.add_row table
    [ "sum(phases)"; "-"; f1 t.sum_mean_us; "-"; "-"; share t.sum_mean_us ];
  (match t.e2e with
  | None -> ()
  | Some e ->
    Stats.Table.add_row table
      [
        Span.phase_name e.phase;
        string_of_int e.count;
        f1 e.mean_us;
        f1 e.p50_us;
        f1 e.p99_us;
        "100.0%";
      ]);
  table

let print ?title sink =
  let t = build sink in
  match t.e2e with
  | None ->
    Format.printf "@.(attribution: no confirmed updates traced)@."
  | Some e ->
    Stats.Table.print (to_table ?title t);
    Format.printf
      "attribution: phases sum to %.1f µs vs end-to-end %.1f µs (Δ %+.3f µs) — %s@."
      t.sum_mean_us e.mean_us t.delta_us
      (if t.reconciled then "reconciled" else "NOT RECONCILED")

let net_phases =
  [ Span.Net_queue; Span.Net_transmit; Span.Net_arq; Span.Net_propagate ]

let print_net ?(title = "Overlay per-hop spans (µs, virtual)") sink =
  let rows = List.filter_map (row_of_phase sink) net_phases in
  if rows <> [] then begin
    let table =
      Stats.Table.create ~title
        ~columns:[ "phase"; "count"; "mean"; "p50"; "p99" ]
    in
    List.iter
      (fun r ->
        Stats.Table.add_row table
          [
            Span.phase_name r.phase;
            string_of_int r.count;
            f1 r.mean_us;
            f1 r.p50_us;
            f1 r.p99_us;
          ])
      rows;
    Stats.Table.print table
  end
