(** Bounded collection point for telemetry spans.

    A sink owns (a) a drop-oldest {!Ring} of finished spans, (b) a
    table of still-open spans, (c) a registry of in-flight update
    traces accumulating lifecycle milestones, and (d) per-phase
    latency histograms.

    {b Zero cost when disabled.} Every entry point first tests
    {!enabled} (a single immutable bool) and returns immediately when
    false; a disabled sink never allocates past construction. Hot
    paths that cannot afford even a call can share the {!null} sink or
    guard on an [int >= 0] trace id.

    {b Update lifecycle.} Instrumentation reports milestones via the
    [update_*] functions; nothing is recorded per-milestone except a
    timestamp (first writer wins, so client resubmissions do not move
    milestones). When {!update_confirmed} fires, the sink materialises
    the six lifecycle spans of {!Span.phase} in one go — clamping any
    out-of-order milestone to keep intervals non-negative (counted in
    {!clamped}) and substituting a missing milestone with its
    predecessor (zero-width phase, counted in {!incomplete}) — so the
    five child phases always sum {e exactly} to the end-to-end span. *)

type t

(** [create ~enabled ()] makes a sink. [capacity] bounds the finished
    span ring (default 65536); [pending_cap] bounds the in-flight
    trace registry (default 8192, oldest abandoned beyond that). *)
val create : ?capacity:int -> ?pending_cap:int -> enabled:bool -> unit -> t

(** A shared, permanently disabled sink: safe default wherever a sink
    is required. *)
val null : t

val enabled : t -> bool

(** Quorum thresholds deciding the [Preorder]→[Ordering] and
    [Ordering]→[Execution] milestones: [order] is the number of
    distinct replicas that must report {!update_body} before the
    update counts as orderable; [reply] the number of distinct
    executions before it counts as executed. Defaults 1/1. *)
val set_quorums : t -> order:int -> reply:int -> unit

(** {2 Update-lifecycle milestones} *)

val update_submitted : t -> trace:int -> now:int -> unit

(** [update_batched]: the client endpoint flushed the batch carrying
    this update ([Bft.Batch] size/deadline policy). Optional — when it
    never fires (batching off), the batch-wait phase materialises with
    zero width at the submit time and the trace is {e not} counted
    incomplete. *)
val update_batched : t -> trace:int -> now:int -> unit

val update_at_origin : t -> trace:int -> now:int -> unit

(** [update_body]: a replica stored the pre-ordered body (Prime
    po_request / PBFT pre-prepare payload). The order-quorum-th
    distinct replica sets the orderable milestone. *)
val update_body : t -> trace:int -> replica:int -> now:int -> unit

(** Explicit orderable milestone (PBFT leader takes the update up for
    proposal). First of [update_orderable] / quorum-th [update_body]
    wins. *)
val update_orderable : t -> trace:int -> now:int -> unit

val update_executed : t -> trace:int -> replica:int -> now:int -> unit

(** Reply send by the reply-quorum-th executor [r*]; other replicas'
    reply sends are ignored. *)
val update_reply_sent : t -> trace:int -> replica:int -> now:int -> unit

val update_confirmed : t -> trace:int -> now:int -> unit

(** {2 Generic spans} (overlay per-hop instrumentation) *)

(** [open_span t ~phase ~node ~label ~now] starts a span and returns
    its id ([-1] when disabled — all other span functions accept and
    ignore [-1]). *)
val open_span :
  t ->
  ?parent:int ->
  ?trace:int ->
  phase:Span.phase ->
  node:int ->
  label:string ->
  now:int ->
  unit ->
  int

val close_span : t -> id:int -> now:int -> unit

(** Discard an open span without recording it (e.g. its frame was
    dropped). *)
val cancel_span : t -> id:int -> unit

(** Record a zero-duration [Annotation] span. *)
val annotate : t -> ?node:int -> label:string -> now:int -> unit -> unit

(** {2 Introspection} *)

(** Finished spans, oldest first. *)
val spans : t -> Span.t list

(** Per-phase duration histogram (µs). Lifecycle phases are fed at
    confirmation; [Net_*] phases at span close. *)
val hist : t -> Span.phase -> Stats.Histogram.t

val open_count : t -> int
val opened : t -> int
val closed : t -> int

(** Spans evicted from the finished ring by overwrite. *)
val ring_dropped : t -> int

val confirmed : t -> int
val incomplete : t -> int
val clamped : t -> int

(** In-flight traces abandoned to honour [pending_cap], plus open
    spans discarded via {!cancel_span}. *)
val abandoned : t -> int

val pending_count : t -> int
val clear : t -> unit
