(** Bounded drop-oldest ring buffer.

    A fixed-capacity buffer that overwrites its oldest element once
    full, counting every overwrite in {!dropped}. This is the single
    retention policy shared by the telemetry {!Sink} and
    [Sim.Trace]: memory stays bounded on arbitrarily long runs and
    the caller can always tell how much history was shed. *)

type 'a t

(** [create capacity] is an empty ring holding at most [capacity]
    elements. @raise Invalid_argument if [capacity <= 0]. *)
val create : int -> 'a t

(** [push t x] appends [x], evicting the oldest element (and bumping
    {!dropped}) when the ring is full. *)
val push : 'a t -> 'a -> unit

(** Number of elements currently retained. *)
val length : 'a t -> int

val capacity : 'a t -> int

(** Total elements evicted by overwrite since creation / last {!clear}. *)
val dropped : 'a t -> int

(** [iter f t] applies [f] oldest-first. *)
val iter : ('a -> unit) -> 'a t -> unit

(** [fold f init t] folds oldest-first. *)
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

(** Retained elements, oldest first. *)
val to_list : 'a t -> 'a list

val clear : 'a t -> unit
