(** Per-phase latency-attribution tables.

    Summarises a sink's lifecycle histograms into one row per phase
    (count, mean, p50, p99, share of end-to-end) and checks that the
    phase means sum back to the measured end-to-end mean. Because the
    sink materialises contiguous phase intervals, each individual
    trace's phases sum {e exactly} to its end-to-end latency; the mean
    check only absorbs float accumulation error ({!tolerance_us}). *)

type row = {
  phase : Span.phase;
  count : int;
  mean_us : float;
  p50_us : float;
  p99_us : float;
}

type t = {
  rows : row list;  (** the five lifecycle phases, pipeline order *)
  e2e : row option;  (** [None] when no update confirmed *)
  sum_mean_us : float;  (** sum of phase means *)
  delta_us : float;  (** [sum_mean_us] minus end-to-end mean *)
  reconciled : bool;  (** |delta| <= {!tolerance_us} *)
}

(** Reconciliation tolerance for the mean check: 1 µs. *)
val tolerance_us : float

val build : Sink.t -> t

(** [phase_row t phase] is the lifecycle row for [phase], if any update
    traversed it. *)
val phase_row : t -> Span.phase -> row option

(** [phase_share t phase] is [phase]'s share of the end-to-end mean in
    [0, 1] (0 when nothing confirmed) — the per-replica sensor input of
    the local resilience controller: a leader attack shows up as the
    [Ordering] share ballooning, a network attack as [Preorder]/[Reply]
    dissemination shares. *)
val phase_share : t -> Span.phase -> float

(** Render as a {!Stats.Table.t}; includes an [end_to_end] row and a
    [sum(phases)] row so the reconciliation is visible in print. *)
val to_table : ?title:string -> t -> Stats.Table.t

(** Build, print the table and a one-line reconciliation verdict. *)
val print : ?title:string -> Sink.t -> unit

(** Per-hop network detail table (queue / transmit / ARQ / propagate
    span histograms); prints nothing when no net spans were taken. *)
val print_net : ?title:string -> Sink.t -> unit
