type 'a t = {
  buf : 'a option array;
  capacity : int;
  mutable head : int; (* index of the oldest element *)
  mutable len : int;
  mutable dropped : int;
}

let create capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { buf = Array.make capacity None; capacity; head = 0; len = 0; dropped = 0 }

let push t x =
  if t.len < t.capacity then begin
    t.buf.((t.head + t.len) mod t.capacity) <- Some x;
    t.len <- t.len + 1
  end
  else begin
    t.buf.(t.head) <- Some x;
    t.head <- (t.head + 1) mod t.capacity;
    t.dropped <- t.dropped + 1
  end

let length t = t.len
let capacity t = t.capacity
let dropped t = t.dropped

let get_exn t i =
  match t.buf.((t.head + i) mod t.capacity) with
  | Some x -> x
  | None -> assert false

let iter f t =
  for i = 0 to t.len - 1 do
    f (get_exn t i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc (get_exn t i)
  done;
  !acc

let to_list t =
  let acc = ref [] in
  for i = t.len - 1 downto 0 do
    acc := get_exn t i :: !acc
  done;
  !acc

let clear t =
  Array.fill t.buf 0 t.capacity None;
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0
