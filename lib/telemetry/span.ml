type phase =
  | End_to_end
  | Batch_wait
  | Ingress
  | Preorder
  | Ordering
  | Execution
  | Reply
  | Net_queue
  | Net_transmit
  | Net_arq
  | Net_propagate
  | Annotation

let phase_count = 12

let phase_index = function
  | End_to_end -> 0
  | Batch_wait -> 1
  | Ingress -> 2
  | Preorder -> 3
  | Ordering -> 4
  | Execution -> 5
  | Reply -> 6
  | Net_queue -> 7
  | Net_transmit -> 8
  | Net_arq -> 9
  | Net_propagate -> 10
  | Annotation -> 11

let all_phases =
  [|
    End_to_end;
    Batch_wait;
    Ingress;
    Preorder;
    Ordering;
    Execution;
    Reply;
    Net_queue;
    Net_transmit;
    Net_arq;
    Net_propagate;
    Annotation;
  |]

let phase_name = function
  | End_to_end -> "end_to_end"
  | Batch_wait -> "batch_wait"
  | Ingress -> "ingress"
  | Preorder -> "preorder"
  | Ordering -> "ordering"
  | Execution -> "execution"
  | Reply -> "reply"
  | Net_queue -> "net.queue"
  | Net_transmit -> "net.transmit"
  | Net_arq -> "net.arq"
  | Net_propagate -> "net.propagate"
  | Annotation -> "annotation"

let phase_of_name s =
  let rec find i =
    if i >= phase_count then None
    else if String.equal (phase_name all_phases.(i)) s then Some all_phases.(i)
    else find (i + 1)
  in
  find 0

type t = {
  id : int;
  parent : int;
  trace : int;
  phase : phase;
  node : int;
  label : string;
  t_start : int;
  t_end : int;
}

let duration s = s.t_end - s.t_start
let trace_id ~client ~seq = (client lsl 32) lor (seq land 0xFFFF_FFFF)
let trace_client tr = tr asr 32
let trace_seq tr = tr land 0xFFFF_FFFF
let no_trace = -1

let pp ppf s =
  Format.fprintf ppf "[%d<-%d %s node=%d %d..%dus%s%s]" s.id s.parent
    (phase_name s.phase) s.node s.t_start s.t_end
    (if s.trace >= 0 then
       Printf.sprintf " trace=%d#%d" (trace_client s.trace) (trace_seq s.trace)
     else "")
    (if s.label = "" then "" else " " ^ s.label)
