(** Causal spans over the simulated update pipeline.

    A span is one timed interval of work attributed to a {!phase} of
    the update lifecycle, stamped in virtual microseconds. Because the
    discrete-event engine runs every node against a single global
    clock, intervals taken at different nodes are directly comparable
    and contiguous phase intervals sum exactly to the end-to-end
    latency they decompose. *)

(** Phase taxonomy. The first seven are the critical-path decomposition
    of one update's life (each starts where the previous one ends):

    - [End_to_end]: client submit to threshold-combined confirmation
      (the root span; the six below are its children).
    - [Batch_wait]: submit until the endpoint flushes the batch the
      update rode in ([Bft.Batch] size/deadline policy). Zero width
      when batching is off ([max_batch = 1]).
    - [Ingress]: batch flush at the proxy/HMI endpoint until the first
      replica receives the [Client_update] (or [Client_batch]).
    - [Preorder]: first replica receipt until the update is orderable
      — Prime: the order-quorum-th distinct replica stores the
      pre-ordered body; PBFT: the leader takes it up for proposal.
    - [Ordering]: orderable until the reply-quorum-th distinct replica
      has executed it (the k-th executor, [r*]).
    - [Execution]: [r*]'s execution until [r*] sends its
      threshold-share reply (share signing cost).
    - [Reply]: [r*]'s reply send until the client combines f+1 shares.

    The [Net_*] phases are per-hop overlay detail (not part of the
    sum-to-end-to-end set): time spent queued behind other frames,
    occupying a link, waiting out ARQ retransmissions, and
    propagating. [Annotation] marks zero-duration point events
    (e.g. [Sim.Trace] records mirrored into the sink). *)
type phase =
  | End_to_end
  | Batch_wait
  | Ingress
  | Preorder
  | Ordering
  | Execution
  | Reply
  | Net_queue
  | Net_transmit
  | Net_arq
  | Net_propagate
  | Annotation

val phase_count : int
val phase_index : phase -> int
val all_phases : phase array

(** Stable lower-case name, e.g. ["net.queue"]. *)
val phase_name : phase -> string

val phase_of_name : string -> phase option

type t = {
  id : int;
  parent : int;  (** parent span id, or [-1] for a root span *)
  trace : int;  (** owning trace id (see {!trace_id}), or [-1] *)
  phase : phase;
  node : int;  (** replica / overlay node id, or [-1] *)
  label : string;
  t_start : int;  (** virtual µs *)
  t_end : int;  (** virtual µs *)
}

val duration : t -> int

(** Pack an update identity [(client, client_seq)] into one trace id. *)
val trace_id : client:int -> seq:int -> int

val trace_client : int -> int
val trace_seq : int -> int

(** Sentinel for "no trace context" ([-1]). *)
val no_trace : int

val pp : Format.formatter -> t -> unit
