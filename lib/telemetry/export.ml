let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let category (phase : Span.phase) =
  match phase with
  | End_to_end | Batch_wait | Ingress | Preorder | Ordering | Execution | Reply ->
    "lifecycle"
  | Net_queue | Net_transmit | Net_arq | Net_propagate -> "net"
  | Annotation -> "annotation"

let sorted spans =
  List.stable_sort
    (fun (a : Span.t) (b : Span.t) ->
      match compare a.t_start b.t_start with 0 -> compare a.id b.id | c -> c)
    spans

let event_line buf (s : Span.t) =
  Printf.bprintf buf
    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":%d,\"tid\":%d,\"args\":{\"id\":%d,\"parent\":%d,\"trace\":%d,\"node\":%d,\"label\":\"%s\"}}"
    (json_escape (Span.phase_name s.phase))
    (category s.phase) s.t_start (Span.duration s) (s.node + 1)
    (if s.trace >= 0 then Span.trace_seq s.trace else 0)
    s.id s.parent s.trace s.node (json_escape s.label)

let to_string spans =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string buf ",\n";
      event_line buf s)
    (sorted spans);
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

let of_sink sink = to_string (Sink.spans sink)

let write ~path spans =
  let oc = open_out path in
  output_string oc (to_string spans);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Round-trip parser for this exporter's own single-line events.       *)

let span_of_line line =
  try
    Scanf.sscanf line
      "{\"name\":%S,\"cat\":%S,\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":%d,\"tid\":%d,\"args\":{\"id\":%d,\"parent\":%d,\"trace\":%d,\"node\":%d,\"label\":%S}}"
      (fun name _cat ts dur _pid _tid id parent trace node label ->
        match Span.phase_of_name name with
        | None -> failwith ("Export.spans_of_string: unknown phase " ^ name)
        | Some phase ->
          {
            Span.id;
            parent;
            trace;
            phase;
            node;
            label;
            t_start = ts;
            t_end = ts + dur;
          })
  with Scanf.Scan_failure _ | End_of_file ->
    failwith ("Export.spans_of_string: malformed line: " ^ line)

let spans_of_string s =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         let line = String.trim line in
         let line =
           if String.length line > 0 && line.[String.length line - 1] = ',' then
             String.sub line 0 (String.length line - 1)
           else line
         in
         if String.length line >= 8 && String.sub line 0 8 = "{\"name\":" then
           Some (span_of_line line)
         else None)
