type open_span = {
  o_parent : int;
  o_trace : int;
  o_phase : Span.phase;
  o_node : int;
  o_label : string;
  o_start : int;
}

(* Milestones of one in-flight update, all -1 until reported; first
   writer wins so resubmissions cannot move a milestone backwards in
   wall-clock order. [body_mask]/[exec_mask] are replica bitmasks used
   to count *distinct* reporters up to the configured quorums. *)
type pending = {
  mutable submit : int;
  mutable batched : int;
  mutable origin : int;
  mutable orderable : int;
  mutable exec_k : int;
  mutable reply_sent : int;
  mutable reply_replica : int;
  mutable body_mask : int;
  mutable body_count : int;
  mutable exec_mask : int;
  mutable exec_count : int;
}

type t = {
  enabled : bool;
  ring : Span.t Ring.t;
  opens : (int, open_span) Hashtbl.t;
  pending : (int, pending) Hashtbl.t;
  pending_order : int Queue.t;
  pending_cap : int;
  hists : Stats.Histogram.t array;
  mutable next_id : int;
  mutable order_quorum : int;
  mutable reply_quorum : int;
  mutable opened : int;
  mutable closed : int;
  mutable confirmed : int;
  mutable incomplete : int;
  mutable clamped : int;
  mutable abandoned : int;
}

let create ?(capacity = 65536) ?(pending_cap = 8192) ~enabled () =
  {
    enabled;
    ring = Ring.create capacity;
    opens = Hashtbl.create (if enabled then 256 else 1);
    pending = Hashtbl.create (if enabled then 256 else 1);
    pending_order = Queue.create ();
    pending_cap;
    hists = Array.init Span.phase_count (fun _ -> Stats.Histogram.create ());
    next_id = 0;
    order_quorum = 1;
    reply_quorum = 1;
    opened = 0;
    closed = 0;
    confirmed = 0;
    incomplete = 0;
    clamped = 0;
    abandoned = 0;
  }

let null = create ~capacity:1 ~pending_cap:1 ~enabled:false ()
let enabled t = t.enabled

let set_quorums t ~order ~reply =
  t.order_quorum <- max 1 order;
  t.reply_quorum <- max 1 reply

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let push_closed t span =
  Ring.push t.ring span;
  t.closed <- t.closed + 1

(* ------------------------------------------------------------------ *)
(* In-flight trace registry.                                           *)

let evict_oldest t =
  (* The queue may hold ids of traces already confirmed and removed;
     skip those until a live one is found. *)
  let rec go () =
    match Queue.take_opt t.pending_order with
    | None -> ()
    | Some trace ->
      if Hashtbl.mem t.pending trace then begin
        Hashtbl.remove t.pending trace;
        t.abandoned <- t.abandoned + 1
      end
      else go ()
  in
  go ()

let find_pending t trace =
  match Hashtbl.find_opt t.pending trace with
  | Some p -> p
  | None ->
    if Hashtbl.length t.pending >= t.pending_cap then evict_oldest t;
    let p =
      {
        submit = -1;
        batched = -1;
        origin = -1;
        orderable = -1;
        exec_k = -1;
        reply_sent = -1;
        reply_replica = -1;
        body_mask = 0;
        body_count = 0;
        exec_mask = 0;
        exec_count = 0;
      }
    in
    Hashtbl.replace t.pending trace p;
    Queue.push trace t.pending_order;
    p

let update_submitted t ~trace ~now =
  if t.enabled && trace >= 0 then begin
    let p = find_pending t trace in
    if p.submit < 0 then p.submit <- now
  end

let update_batched t ~trace ~now =
  if t.enabled && trace >= 0 then begin
    let p = find_pending t trace in
    if p.batched < 0 then p.batched <- now
  end

let update_at_origin t ~trace ~now =
  if t.enabled && trace >= 0 then begin
    let p = find_pending t trace in
    if p.origin < 0 then p.origin <- now
  end

let distinct_bit mask replica =
  (* Replicas beyond the int bit width (never reached by simulated
     deployments) share the top bit: counted once, not per replica. *)
  let bit = 1 lsl min replica (Sys.int_size - 2) in
  if mask land bit = 0 then Some (mask lor bit) else None

let update_body t ~trace ~replica ~now =
  if t.enabled && trace >= 0 && replica >= 0 then begin
    let p = find_pending t trace in
    match distinct_bit p.body_mask replica with
    | None -> ()
    | Some mask ->
      p.body_mask <- mask;
      p.body_count <- p.body_count + 1;
      if p.body_count = t.order_quorum && p.orderable < 0 then
        p.orderable <- now
  end

let update_orderable t ~trace ~now =
  if t.enabled && trace >= 0 then begin
    let p = find_pending t trace in
    if p.orderable < 0 then p.orderable <- now
  end

let update_executed t ~trace ~replica ~now =
  if t.enabled && trace >= 0 && replica >= 0 then begin
    let p = find_pending t trace in
    match distinct_bit p.exec_mask replica with
    | None -> ()
    | Some mask ->
      p.exec_mask <- mask;
      p.exec_count <- p.exec_count + 1;
      if p.exec_count = t.reply_quorum && p.exec_k < 0 then begin
        p.exec_k <- now;
        p.reply_replica <- replica
      end
  end

let update_reply_sent t ~trace ~replica ~now =
  if t.enabled && trace >= 0 then begin
    let p = find_pending t trace in
    if p.reply_sent < 0 && replica = p.reply_replica then p.reply_sent <- now
  end

let observe t phase value =
  Stats.Histogram.add t.hists.(Span.phase_index phase) (float_of_int value)

let update_confirmed t ~trace ~now =
  if t.enabled && trace >= 0 then
    match Hashtbl.find_opt t.pending trace with
    | None -> ()
    | Some p ->
      Hashtbl.remove t.pending trace;
      t.confirmed <- t.confirmed + 1;
      let missing = ref false and clamp = ref false in
      (* Clamp each milestone into [prev, now]: a missing milestone
         collapses its phase to zero width at the predecessor; an
         out-of-order one (should not happen, see the monotonicity
         argument in DESIGN.md §10) is pinned rather than producing a
         negative interval. *)
      let fix prev v =
        if v < 0 then begin
          missing := true;
          prev
        end
        else if v < prev then begin
          clamp := true;
          prev
        end
        else if v > now then begin
          clamp := true;
          now
        end
        else v
      in
      let submit =
        if p.submit >= 0 then min p.submit now
        else begin
          missing := true;
          (* fall back to the earliest milestone we do have *)
          let cand =
            [ p.batched; p.origin; p.orderable; p.exec_k; p.reply_sent; now ]
          in
          List.fold_left
            (fun acc v -> if v >= 0 then min acc v else acc)
            now cand
        end
      in
      (* A missing [batched] milestone is not incompleteness: with
         batching off (max_batch = 1) updates are never buffered, so
         the batch-wait phase legitimately has zero width at submit. *)
      let batched =
        if p.batched < 0 then submit
        else if p.batched < submit then begin
          clamp := true;
          submit
        end
        else if p.batched > now then begin
          clamp := true;
          now
        end
        else p.batched
      in
      let origin = fix batched p.origin in
      let orderable = fix origin p.orderable in
      let exec_k = fix orderable p.exec_k in
      let reply_sent = fix exec_k p.reply_sent in
      if !missing then t.incomplete <- t.incomplete + 1;
      if !clamp then t.clamped <- t.clamped + 1;
      let root = fresh_id t in
      t.opened <- t.opened + 1;
      push_closed t
        {
          Span.id = root;
          parent = -1;
          trace;
          phase = Span.End_to_end;
          node = -1;
          label = "";
          t_start = submit;
          t_end = now;
        };
      observe t Span.End_to_end (now - submit);
      let child phase ~node t_start t_end =
        let id = fresh_id t in
        t.opened <- t.opened + 1;
        push_closed t
          {
            Span.id;
            parent = root;
            trace;
            phase;
            node;
            label = "";
            t_start;
            t_end;
          };
        observe t phase (t_end - t_start)
      in
      child Span.Batch_wait ~node:(-1) submit batched;
      child Span.Ingress ~node:(-1) batched origin;
      child Span.Preorder ~node:(-1) origin orderable;
      child Span.Ordering ~node:(-1) orderable exec_k;
      child Span.Execution ~node:p.reply_replica exec_k reply_sent;
      child Span.Reply ~node:p.reply_replica reply_sent now

(* ------------------------------------------------------------------ *)
(* Generic open/close spans.                                           *)

let open_span t ?(parent = -1) ?(trace = -1) ~phase ~node ~label ~now () =
  if not t.enabled then -1
  else begin
    let id = fresh_id t in
    Hashtbl.replace t.opens id
      { o_parent = parent; o_trace = trace; o_phase = phase; o_node = node;
        o_label = label; o_start = now };
    t.opened <- t.opened + 1;
    id
  end

let close_span t ~id ~now =
  if t.enabled && id >= 0 then
    match Hashtbl.find_opt t.opens id with
    | None -> ()
    | Some o ->
      Hashtbl.remove t.opens id;
      push_closed t
        {
          Span.id;
          parent = o.o_parent;
          trace = o.o_trace;
          phase = o.o_phase;
          node = o.o_node;
          label = o.o_label;
          t_start = o.o_start;
          t_end = max now o.o_start;
        };
      observe t o.o_phase (max now o.o_start - o.o_start)

let cancel_span t ~id =
  if t.enabled && id >= 0 && Hashtbl.mem t.opens id then begin
    Hashtbl.remove t.opens id;
    t.abandoned <- t.abandoned + 1
  end

let annotate t ?(node = -1) ~label ~now () =
  if t.enabled then begin
    let id = fresh_id t in
    t.opened <- t.opened + 1;
    push_closed t
      {
        Span.id;
        parent = -1;
        trace = -1;
        phase = Span.Annotation;
        node;
        label;
        t_start = now;
        t_end = now;
      }
  end

(* ------------------------------------------------------------------ *)
(* Introspection.                                                      *)

let spans t = Ring.to_list t.ring
let hist t phase = t.hists.(Span.phase_index phase)
let open_count t = Hashtbl.length t.opens
let opened t = t.opened
let closed t = t.closed
let ring_dropped t = Ring.dropped t.ring
let confirmed t = t.confirmed
let incomplete t = t.incomplete
let clamped t = t.clamped
let abandoned t = t.abandoned
let pending_count t = Hashtbl.length t.pending

let clear t =
  Ring.clear t.ring;
  Hashtbl.reset t.opens;
  Hashtbl.reset t.pending;
  Queue.clear t.pending_order;
  Array.iteri (fun i _ -> t.hists.(i) <- Stats.Histogram.create ()) t.hists;
  t.next_id <- 0;
  t.opened <- 0;
  t.closed <- 0;
  t.confirmed <- 0;
  t.incomplete <- 0;
  t.clamped <- 0;
  t.abandoned <- 0
