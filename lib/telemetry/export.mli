(** Chrome [trace_event] JSON export.

    Emits finished spans as complete ("ph":"X") events loadable in
    [chrome://tracing] / Perfetto. Events are sorted by
    [(t_start, id)] and printed one per line with a fixed field
    order, so the output is byte-stable for a fixed seed — suitable
    for golden tests.

    Mapping: pid = node + 1 (track per overlay node, 0 for
    node-less spans), tid = the trace's client sequence number (0
    when the span has no trace). All span fields, including the ones
    Chrome ignores, ride in ["args"] so the export is lossless:
    {!spans_of_string} parses this exporter's own output back into
    spans (a round-trip sanity check, not a general JSON parser). *)

val to_string : Span.t list -> string

(** [of_sink sink] exports the sink's finished spans. *)
val of_sink : Sink.t -> string

val write : path:string -> Span.t list -> unit

(** Parse this module's own output. @raise Failure on malformed
    lines. *)
val spans_of_string : string -> Span.t list
