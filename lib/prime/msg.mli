(** Message vocabulary of the Prime protocol.

    Relative to the published protocol, pre-order acknowledgements are
    folded into the cumulative [Po_aru] vectors (which is what they
    aggregate into in Prime as well); signatures and acknowledgement
    certificates are carried implicitly by the authenticated transport.
    The message flow that determines latency — PO-Request dissemination,
    periodic vector exchange, leader summary-matrix pre-prepares, and
    the prepare/commit votes — matches the paper's. *)

type prepared_entry = {
  entry_seq : Bft.Types.seqno;
  entry_view : Bft.Types.view;
  entry_matrix : Matrix.t;
}

type t =
  | Po_request of {
      origin : Bft.Types.replica;
      po_seq : int;
      update : Bft.Update.t;
    }  (** origin disseminates a client update with its local order *)
  | Po_batch of {
      origin : Bft.Types.replica;
      first_seq : int;
      updates : Bft.Update.t list;
    }
      (** origin disseminates a batch of updates occupying the
          consecutive pre-order sequence numbers
          [first_seq .. first_seq + length updates - 1]; semantically
          identical to that many [Po_request]s but amortizing one
          authenticated frame over the whole batch *)
  | Po_aru of { vector : Matrix.vector }
      (** sender's cumulative pre-order vector *)
  | Preprepare of {
      view : Bft.Types.view;
      seq : Bft.Types.seqno;
      matrix : Matrix.t;
    }  (** leader's periodic summary-matrix proposal *)
  | Prepare of {
      view : Bft.Types.view;
      seq : Bft.Types.seqno;
      digest : Cryptosim.Digest.t;
    }
  | Commit of {
      view : Bft.Types.view;
      seq : Bft.Types.seqno;
      digest : Cryptosim.Digest.t;
    }
  | Suspect of { view : Bft.Types.view }
      (** the sender accuses the leader of [view] of violating the
          turnaround-time bound *)
  | Viewchange of {
      new_view : Bft.Types.view;
      last_committed : Bft.Types.seqno;
      prepared : prepared_entry list;
    }
  | Newview of {
      view : Bft.Types.view;
      proposals : (Bft.Types.seqno * Matrix.t) list;
    }
  | Recon_request of { origin : Bft.Types.replica; po_seq : int }
      (** ask peers for a pre-order request body this replica missed *)
  | Recon_reply of {
      origin : Bft.Types.replica;
      po_seq : int;
      update : Bft.Update.t;
    }
  | Slot_request of { seq : Bft.Types.seqno }
      (** ask peers for an ordered slot this replica missed *)
  | Slot_reply of { seq : Bft.Types.seqno; matrix : Matrix.t }
  | Checkpoint of { executed : int; chain : Cryptosim.Digest.t }

val pp : Format.formatter -> t -> unit
