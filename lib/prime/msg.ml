type prepared_entry = {
  entry_seq : Bft.Types.seqno;
  entry_view : Bft.Types.view;
  entry_matrix : Matrix.t;
}

type t =
  | Po_request of {
      origin : Bft.Types.replica;
      po_seq : int;
      update : Bft.Update.t;
    }
  | Po_batch of {
      origin : Bft.Types.replica;
      first_seq : int;
      updates : Bft.Update.t list;
    }
  | Po_aru of { vector : Matrix.vector }
  | Preprepare of {
      view : Bft.Types.view;
      seq : Bft.Types.seqno;
      matrix : Matrix.t;
    }
  | Prepare of {
      view : Bft.Types.view;
      seq : Bft.Types.seqno;
      digest : Cryptosim.Digest.t;
    }
  | Commit of {
      view : Bft.Types.view;
      seq : Bft.Types.seqno;
      digest : Cryptosim.Digest.t;
    }
  | Suspect of { view : Bft.Types.view }
  | Viewchange of {
      new_view : Bft.Types.view;
      last_committed : Bft.Types.seqno;
      prepared : prepared_entry list;
    }
  | Newview of {
      view : Bft.Types.view;
      proposals : (Bft.Types.seqno * Matrix.t) list;
    }
  | Recon_request of { origin : Bft.Types.replica; po_seq : int }
  | Recon_reply of {
      origin : Bft.Types.replica;
      po_seq : int;
      update : Bft.Update.t;
    }
  | Slot_request of { seq : Bft.Types.seqno }
  | Slot_reply of { seq : Bft.Types.seqno; matrix : Matrix.t }
  | Checkpoint of { executed : int; chain : Cryptosim.Digest.t }

let pp ppf = function
  | Po_request { origin; po_seq; update } ->
    Format.fprintf ppf "Po_request(o%d,#%d,%a)" origin po_seq Bft.Update.pp
      update
  | Po_batch { origin; first_seq; updates } ->
    Format.fprintf ppf "Po_batch(o%d,#%d..%d)" origin first_seq
      (first_seq + List.length updates - 1)
  | Po_aru { vector } -> Format.fprintf ppf "Po_aru%a" Matrix.pp_vector vector
  | Preprepare { view; seq; _ } ->
    Format.fprintf ppf "Preprepare(v%d,s%d)" view seq
  | Prepare { view; seq; _ } -> Format.fprintf ppf "Prepare(v%d,s%d)" view seq
  | Commit { view; seq; _ } -> Format.fprintf ppf "Commit(v%d,s%d)" view seq
  | Suspect { view } -> Format.fprintf ppf "Suspect(v%d)" view
  | Viewchange { new_view; _ } -> Format.fprintf ppf "Viewchange(v%d)" new_view
  | Newview { view; proposals } ->
    Format.fprintf ppf "Newview(v%d,%d props)" view (List.length proposals)
  | Recon_request { origin; po_seq } ->
    Format.fprintf ppf "Recon_request(o%d,#%d)" origin po_seq
  | Recon_reply { origin; po_seq; _ } ->
    Format.fprintf ppf "Recon_reply(o%d,#%d)" origin po_seq
  | Slot_request { seq } -> Format.fprintf ppf "Slot_request(s%d)" seq
  | Slot_reply { seq; _ } -> Format.fprintf ppf "Slot_reply(s%d)" seq
  | Checkpoint { executed; _ } -> Format.fprintf ppf "Checkpoint(%d)" executed

