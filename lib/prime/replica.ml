open Bft

type config = {
  quorum : Quorum.t;
  epoch : int;
      (* membership epoch this instance belongs to; the instance itself
         never compares epochs — the deployment layer wraps and filters
         frames — but carrying the epoch here keeps every quorum check
         attributable to one certificate *)
  aru_interval_us : int;
  proposal_interval_us : int;
  tat_threshold_us : int;
  tat_violations_to_suspect : int;
  viewchange_timeout_us : int;
  checkpoint_interval : int;
  watchdog_interval_us : int;
  recon_retry_us : int;
  batch : Batch.policy;
}

let default_config quorum =
  {
    quorum;
    epoch = 0;
    aru_interval_us = 5_000;
    proposal_interval_us = 10_000;
    tat_threshold_us = 150_000;
    tat_violations_to_suspect = 3;
    viewchange_timeout_us = 1_000_000;
    checkpoint_interval = 128;
    watchdog_interval_us = 25_000;
    recon_retry_us = 100_000;
    batch = Batch.singleton;
  }

type slot = {
  mutable slot_view : Types.view;
  mutable matrix : Matrix.t option;
  mutable digest : Cryptosim.Digest.t option;
  prepares : (Types.replica, unit) Hashtbl.t;
  commits : (Types.replica, unit) Hashtbl.t;
  buffered_prepares : (Types.replica, Types.view * Cryptosim.Digest.t) Hashtbl.t;
  buffered_commits : (Types.replica, Types.view * Cryptosim.Digest.t) Hashtbl.t;
  mutable prepared : bool;
  mutable committed : bool;
}

type mode = Normal | View_changing of { target : Types.view; since_us : int }

type tat_probe = { target_total : int; sent_us : int }

type snapshot = {
  snap_exec_count : int;
  snap_chain : Cryptosim.Digest.t;
  snap_cursor : Matrix.vector;
  snap_last_applied : Types.seqno;
  snap_cum_matrix : Matrix.t;
  snap_view : Types.view;
  snap_delivery : Delivery.state;
}

type t = {
  config : config;
  (* --- live knobs (runtime tuning plane) --- *)
  (* Initialised from [config]; the corresponding [config] fields are
     never read after [create]. Hot-swapped by the control layer via
     the [set_*] entry points below. *)
  mutable tat_threshold_us : int;
  mutable tat_violations_to_suspect : int;
  mutable batch : Batch.policy;
  env : Msg.t Env.t;
  execute : int -> Update.t -> unit;
  faults : Faults.t;
  log : Exec_log.t;
  delivery : Delivery.t;
  (* --- pre-ordering --- *)
  mutable po_next_seq : int;  (* own origin counter; survives recovery *)
  po_acc : Update.t Batch.acc;
      (* own submissions awaiting a Po_batch flush (size/deadline) *)
  po_store : (Types.replica * int, Update.t) Hashtbl.t;
  mutable recv : Matrix.vector;  (* contiguous received per origin *)
  mutable rows : Matrix.t;  (* latest reported vector per replica *)
  mutable aru_dirty : bool;
  mutable aru_heartbeat : int;
  (* --- ordering --- *)
  slots : (Types.seqno, slot) Hashtbl.t;
  applied_matrices : (Types.seqno, Matrix.t) Hashtbl.t;
  mutable view : Types.view;
  mutable mode : mode;
  mutable next_seq : Types.seqno;  (* leader: next proposal slot *)
  mutable last_applied : Types.seqno;
  mutable cum_matrix : Matrix.t;
  mutable cursor : Matrix.vector;  (* per-origin executed cursor *)
  mutable last_proposed : Matrix.t;
  mutable proposal_heartbeat : int;
  (* --- execution stall / reconciliation --- *)
  mutable stalled_on : (Types.replica * int) option;
  mutable stall_since_us : int;
  mutable last_recon_us : int;
  mutable last_repair_us : int;
      (* last leader re-broadcast of lost pre-prepares *)
  mutable last_po_resend_us : int;
      (* last re-broadcast of own unacknowledged pre-orders *)
  mutable max_seq_seen : Types.seqno;
      (* highest ordering sequence referenced by any peer message;
         evidence of slots we may have missed entirely *)
  mutable last_apply_us : int;
  (* --- TAT / suspicion --- *)
  pending_tats : tat_probe Queue.t;
  mutable frontier : Matrix.vector;
      (* pre-order frontier whose ordering progress we are timing *)
  mutable frontier_since_us : int;
  mutable tat_violations : int;
  mutable max_tat_us : int;
  mutable suspected_view : Types.view;  (* highest view we suspected *)
  suspects : (Types.view, (Types.replica, unit) Hashtbl.t) Hashtbl.t;
  (* --- view change --- *)
  vc_votes :
    ( Types.view,
      (Types.replica, Types.seqno * Msg.prepared_entry list) Hashtbl.t )
    Hashtbl.t;
  (* Evidence of higher views: a reconnecting replica that missed a
     Newview learns the installed view once f+1 distinct peers send
     ordering messages tagged with it. *)
  view_evidence : (Types.view, (Types.replica, unit) Hashtbl.t) Hashtbl.t;
  mutable view_changes : int;
  (* --- checkpoints / catch-up --- *)
  ckpt_votes :
    (int * Cryptosim.Digest.t, (Types.replica, unit) Hashtbl.t) Hashtbl.t;
  mutable stable_exec : int;
  slot_reply_votes :
    ( Types.seqno * Cryptosim.Digest.t,
      (Types.replica, unit) Hashtbl.t * Matrix.t )
    Hashtbl.t;
  mutable on_fall_behind : unit -> unit;
  mutable last_fall_behind_us : int;
  last_heard_us : int array; (* per peer: when we last received anything *)
  mutable running : bool;
  (* Epoch cutover: a halted instance has executed its final update (the
     boundary) and must neither send, receive, execute, nor re-arm its
     timers again.  Halting is one-way; the successor epoch runs in a
     fresh instance. *)
  mutable halted : bool;
}

let n t = t.config.quorum.Quorum.n
let quorum_size t = Quorum.quorum_size t.config.quorum
let leader_of t view = Types.leader_of ~n:(n t) view
let is_leader t = leader_of t t.view = t.env.Env.self

let faults t = t.faults
let view t = t.view
let exec_log t = t.log
let executed_count t = Exec_log.length t.log
let last_applied t = t.last_applied
let recv_vector t = Array.copy t.recv
let view_changes t = t.view_changes
let max_tat_us t = t.max_tat_us
let suspected t = t.suspected_view >= t.view
let set_on_fall_behind t f = t.on_fall_behind <- f
let epoch t = t.config.epoch
let halted t = t.halted

(* Stop this instance at the epoch boundary.  Callable from inside the
   [execute] callback: the current eligibility batch still finishes
   (its release is agreed, so the boundary execution count is
   deterministic across replicas), after which no further slot, timer,
   send or receive is processed. *)
let halt t = t.halted <- true

(* Peers this replica has not heard from within [threshold_us]
   (self excluded); input to accusation-based reactive recovery. *)
let unresponsive t ~threshold_us =
  let now = t.env.Env.now_us () in
  List.filter
    (fun r -> r <> t.env.Env.self && now - t.last_heard_us.(r) > threshold_us)
    (List.init (n t) Fun.id)

let applied_matrix_digest t seq =
  Option.map Matrix.digest (Hashtbl.find_opt t.applied_matrices seq)

let create config env ~execute =
  let nn = config.quorum.Quorum.n in
  {
    config;
    tat_threshold_us = config.tat_threshold_us;
    tat_violations_to_suspect = config.tat_violations_to_suspect;
    batch = config.batch;
    env;
    execute;
    faults = Faults.honest ();
    log = Exec_log.create ();
    delivery = Delivery.create ();
    po_next_seq = 1;
    po_acc = Batch.acc config.batch;
    po_store = Hashtbl.create 4096;
    recv = Matrix.empty_vector ~n:nn;
    rows = Matrix.empty ~n:nn;
    aru_dirty = false;
    aru_heartbeat = 0;
    slots = Hashtbl.create 997;
    applied_matrices = Hashtbl.create 997;
    view = 0;
    mode = Normal;
    next_seq = 1;
    last_applied = 0;
    cum_matrix = Matrix.empty ~n:nn;
    cursor = Matrix.empty_vector ~n:nn;
    last_proposed = Matrix.empty ~n:nn;
    proposal_heartbeat = 0;
    stalled_on = None;
    stall_since_us = 0;
    last_recon_us = 0;
    last_repair_us = 0;
    last_po_resend_us = 0;
    max_seq_seen = 0;
    last_apply_us = 0;
    pending_tats = Queue.create ();
    frontier = Matrix.empty_vector ~n:nn;
    frontier_since_us = 0;
    tat_violations = 0;
    max_tat_us = 0;
    suspected_view = -1;
    suspects = Hashtbl.create 7;
    vc_votes = Hashtbl.create 7;
    view_evidence = Hashtbl.create 7;
    view_changes = 0;
    ckpt_votes = Hashtbl.create 17;
    stable_exec = 0;
    slot_reply_votes = Hashtbl.create 17;
    on_fall_behind = (fun () -> ());
    last_fall_behind_us = -1_000_000_000;
    last_heard_us = Array.make nn 0;
    running = false;
    halted = false;
  }

(* ------------------------------------------------------------------ *)
(* Sending through the fault filter.                                   *)

let send_to t dst msg =
  if
    (not t.halted)
    && (not t.faults.Faults.crashed)
    && (not t.faults.Faults.silent)
    && not (t.faults.Faults.drop_to dst)
  then t.env.Env.send dst msg

let broadcast t msg = List.iter (fun r -> send_to t r msg) (Env.others t.env)

(* ------------------------------------------------------------------ *)
(* Pre-ordering: receive bodies, advance the cumulative vector.        *)

let vector_total v = Array.fold_left ( + ) 0 v

let store_body t ~origin ~po_seq update =
  let key = (origin, po_seq) in
  if not (Hashtbl.mem t.po_store key) then begin
    Hashtbl.replace t.po_store key update;
    (* Pre-order milestone: the order-quorum-th distinct replica to
       store this body makes the update orderable (sink-side count). *)
    if Telemetry.Sink.enabled t.env.Env.telemetry then
      Telemetry.Sink.update_body t.env.Env.telemetry
        ~trace:
          (Telemetry.Span.trace_id ~client:update.Update.client
             ~seq:update.Update.client_seq)
        ~replica:t.env.Env.self
        ~now:(t.env.Env.now_us ());
    (* Advance the contiguous cursor for this origin. *)
    let advanced = ref false in
    while Hashtbl.mem t.po_store (origin, t.recv.(origin) + 1) do
      t.recv.(origin) <- t.recv.(origin) + 1;
      advanced := true
    done;
    if !advanced then begin
      t.aru_dirty <- true;
      (* Our own row of the matrix is always our own vector. *)
      t.rows.(t.env.Env.self) <-
        Matrix.merge_vector t.rows.(t.env.Env.self) t.recv
    end;
    !advanced
  end
  else false

(* ------------------------------------------------------------------ *)
(* Execution: apply committed slots in order; each slot's cumulative
   matrix yields an eligibility vector; newly eligible updates execute
   in deterministic (origin, po_seq) order.                            *)

let slot t seq =
  match Hashtbl.find_opt t.slots seq with
  | Some s -> s
  | None ->
    let s =
      {
        slot_view = -1;
        matrix = None;
        digest = None;
        prepares = Hashtbl.create 7;
        commits = Hashtbl.create 7;
        buffered_prepares = Hashtbl.create 7;
        buffered_commits = Hashtbl.create 7;
        prepared = false;
        committed = false;
      }
    in
    Hashtbl.replace t.slots seq s;
    s

let rec drain_exec t =
  let seq = t.last_applied + 1 in
  match Hashtbl.find_opt t.slots seq with
  | Some s when s.committed -> (
    match s.matrix with
    | None -> ()
    | Some m ->
      let merged = Matrix.merge t.cum_matrix m in
      let elig = Matrix.eligible merged ~threshold:(quorum_size t) in
      (* Execute every newly eligible update, origin-major order. *)
      let stalled = ref false in
      let origin = ref 0 in
      (* [halted] can flip mid-loop (the [execute] callback halts at an
         epoch boundary); the current Delivery.offer batch completes —
         its release is agreed, so every replica's boundary execution
         count lands on the same index — and then the drain stops
         without touching cursor, matrix or slot state further. *)
      while (not !stalled) && (not t.halted) && !origin < n t do
        let j = !origin in
        while (not !stalled) && (not t.halted) && t.cursor.(j) < elig.(j) do
          let po_seq = t.cursor.(j) + 1 in
          match Hashtbl.find_opt t.po_store (j, po_seq) with
          | None ->
            (* Body missing: stall and reconcile. A quorum acknowledged
               it, so at least one correct replica can supply it. *)
            if t.stalled_on <> Some (j, po_seq) then begin
              t.stalled_on <- Some (j, po_seq);
              t.stall_since_us <- t.env.Env.now_us ();
              t.last_recon_us <- t.env.Env.now_us ();
              broadcast t (Msg.Recon_request { origin = j; po_seq })
            end;
            stalled := true
          | Some update ->
            t.cursor.(j) <- po_seq;
            (* Exactly-once, per-client-FIFO release. *)
            List.iter
              (fun u ->
                let idx = Exec_log.append t.log u in
                t.execute idx u;
                maybe_checkpoint t)
              (Delivery.offer t.delivery update)
        done;
        incr origin
      done;
      if (not !stalled) && not t.halted then begin
        t.stalled_on <- None;
        t.cum_matrix <- merged;
        t.last_applied <- seq;
        t.last_apply_us <- t.env.Env.now_us ();
        Hashtbl.replace t.applied_matrices seq m;
        drain_exec t
      end)
  | Some _ | None -> ()

and maybe_checkpoint t =
  let count = Exec_log.length t.log in
  if count mod t.config.checkpoint_interval = 0 then begin
    let chain = Exec_log.chain_digest t.log in
    broadcast t (Msg.Checkpoint { executed = count; chain });
    record_checkpoint_vote t ~from:t.env.Env.self ~executed:count ~chain
  end

and record_checkpoint_vote t ~from ~executed ~chain =
  let key = (executed, chain) in
  let voters =
    match Hashtbl.find_opt t.ckpt_votes key with
    | Some v -> v
    | None ->
      let v = Hashtbl.create 7 in
      Hashtbl.replace t.ckpt_votes key v;
      v
  in
  Hashtbl.replace voters from ();
  (* A checkpoint certificate far beyond our own execution means the
     ordering history we need has been garbage-collected by our peers:
     slot retrieval cannot catch us up, state transfer is required. *)
  if
    Hashtbl.length voters >= quorum_size t
    && executed > Exec_log.length t.log + (2 * t.config.checkpoint_interval)
    && t.env.Env.now_us () - t.last_fall_behind_us > 2_000_000
  then begin
    t.last_fall_behind_us <- t.env.Env.now_us ();
    t.on_fall_behind ()
  end;
  if Hashtbl.length voters >= quorum_size t && executed > t.stable_exec then begin
    t.stable_exec <- executed;
    (* Garbage-collect: drop applied slots except a recent tail, and
       pre-order bodies already executed everywhere. *)
    let horizon = t.last_applied - 64 in
    let stale =
      Hashtbl.fold
        (fun s _ acc -> if s < horizon then s :: acc else acc)
        t.applied_matrices []
    in
    List.iter (Hashtbl.remove t.applied_matrices) stale;
    List.iter (Hashtbl.remove t.slots) stale;
    let dead_bodies =
      Hashtbl.fold
        (fun (o, ps) _ acc ->
          if ps <= t.cursor.(o) - 16 then (o, ps) :: acc else acc)
        t.po_store []
    in
    List.iter (Hashtbl.remove t.po_store) dead_bodies
  end

(* ------------------------------------------------------------------ *)
(* Ordering phases (pre-prepare / prepare / commit).                   *)

let rec maybe_prepared t seq =
  let s = slot t seq in
  if (not s.prepared) && Option.is_some s.matrix
     && Hashtbl.length s.prepares >= quorum_size t
  then begin
    s.prepared <- true;
    match s.digest with
    | None -> ()
    | Some digest ->
      broadcast t (Msg.Commit { view = s.slot_view; seq; digest });
      Hashtbl.replace s.commits t.env.Env.self ();
      maybe_committed t seq
  end

and maybe_committed t seq =
  let s = slot t seq in
  if (not s.committed) && s.prepared && Hashtbl.length s.commits >= quorum_size t
  then begin
    s.committed <- true;
    drain_exec t
  end

let accept_preprepare t ~view ~seq ~matrix =
  if seq > t.last_applied then begin
    let s = slot t seq in
    let fresh = s.matrix = None || s.slot_view < view in
    if fresh then begin
      s.slot_view <- view;
      s.matrix <- Some matrix;
      let digest = Matrix.digest matrix in
      s.digest <- Some digest;
      Hashtbl.reset s.prepares;
      Hashtbl.reset s.commits;
      s.prepared <- false;
      Hashtbl.replace s.prepares (leader_of t view) ();
      Hashtbl.replace s.prepares t.env.Env.self ();
      broadcast t (Msg.Prepare { view; seq; digest });
      Hashtbl.iter
        (fun from (v, d) ->
          if v = view && Cryptosim.Digest.equal d digest then
            Hashtbl.replace s.prepares from ())
        s.buffered_prepares;
      Hashtbl.reset s.buffered_prepares;
      Hashtbl.iter
        (fun from (v, d) ->
          if v = view && Cryptosim.Digest.equal d digest then
            Hashtbl.replace s.commits from ())
        s.buffered_commits;
      Hashtbl.reset s.buffered_commits;
      maybe_prepared t seq
    end
  end

(* ------------------------------------------------------------------ *)
(* TAT measurement.                                                    *)

let record_tat_sample t sample_us =
  if sample_us > t.max_tat_us then t.max_tat_us <- sample_us;
  if sample_us > t.tat_threshold_us then
    t.tat_violations <- t.tat_violations + 1
  else t.tat_violations <- 0

let process_tat_on_preprepare t matrix =
  let my_row_total = vector_total matrix.(t.env.Env.self) in
  let now = t.env.Env.now_us () in
  let continue = ref true in
  while !continue do
    match Queue.peek_opt t.pending_tats with
    | Some probe when probe.target_total <= my_row_total ->
      ignore (Queue.pop t.pending_tats : tat_probe);
      record_tat_sample t (now - probe.sent_us)
    | Some _ | None -> continue := false
  done

(* Drop per-view vote tables strictly below the installed view.
   Provably invisible to behaviour: [record_suspect] only acts when
   [view = t.view], [record_vc_vote] when [target > t.view] and
   [note_view_evidence] when [view > t.view], so entries below the
   current view can never be read again — on long soaks with repeated
   view changes they only grow the tables. Called at every view
   advance. *)
let prune_stale_views t =
  let drop tbl =
    let stale =
      Hashtbl.fold (fun v _ acc -> if v < t.view then v :: acc else acc) tbl []
    in
    List.iter (Hashtbl.remove tbl) stale
  in
  drop t.suspects;
  drop t.vc_votes;
  drop t.view_evidence

(* Retained per-view table count, for leak regression tests. *)
let retained_suspect_views t =
  Hashtbl.length t.suspects + Hashtbl.length t.vc_votes
  + Hashtbl.length t.view_evidence

let rec maybe_suspect t =
  if
    t.tat_violations >= t.tat_violations_to_suspect
    && t.suspected_view < t.view
    && not (is_leader t)
  then begin
    t.suspected_view <- t.view;
    t.tat_violations <- 0;
    t.env.Env.trace (Printf.sprintf "suspect leader of v%d" t.view);
    broadcast t (Msg.Suspect { view = t.view });
    record_suspect t ~from:t.env.Env.self ~view:t.view
  end

and record_suspect t ~from ~view =
  if view = t.view then begin
    let voters =
      match Hashtbl.find_opt t.suspects view with
      | Some v -> v
      | None ->
        let v = Hashtbl.create 7 in
        Hashtbl.replace t.suspects view v;
        v
    in
    Hashtbl.replace voters from ();
    (* Enough suspicions that at least one comes from a correct,
       non-recovering replica: rotate the leader. *)
    if Hashtbl.length voters >= Quorum.suspect_threshold t.config.quorum then
      start_view_change t (view + 1)
  end

(* ------------------------------------------------------------------ *)
(* View changes (same shape as the PBFT baseline, but entries carry
   matrices).                                                          *)

and prepared_entries t =
  (* Report EVERY retained prepared slot, including ones we already
     applied: a slot committed at a single replica is prepared at a
     quorum, and the new leader must re-propose it with the same
     content or risk divergence (replicas that missed the commit would
     otherwise fill the slot with a no-op). *)
  Hashtbl.fold
    (fun seq s acc ->
      if s.prepared then
        match s.matrix with
        | Some m ->
          { Msg.entry_seq = seq; entry_view = s.slot_view; entry_matrix = m }
          :: acc
        | None -> acc
      else acc)
    t.slots []

and start_view_change t target =
  let should =
    target > t.view
    &&
    match t.mode with
    | View_changing { target = cur; _ } -> target > cur
    | Normal -> true
  in
  if should then begin
    t.mode <- View_changing { target; since_us = t.env.Env.now_us () };
    t.env.Env.trace (Printf.sprintf "view-change -> v%d" target);
    let prepared = prepared_entries t in
    broadcast t
      (Msg.Viewchange
         { new_view = target; last_committed = t.last_applied; prepared });
    record_vc_vote t ~from:t.env.Env.self ~target ~last_committed:t.last_applied
      ~prepared
  end

and record_vc_vote t ~from ~target ~last_committed ~prepared =
  if target > t.view then begin
    let votes =
      match Hashtbl.find_opt t.vc_votes target with
      | Some v -> v
      | None ->
        let v = Hashtbl.create 7 in
        Hashtbl.replace t.vc_votes target v;
        v
    in
    Hashtbl.replace votes from (last_committed, prepared);
    if Hashtbl.length votes >= Quorum.reply_threshold t.config.quorum then
      start_view_change t target;
    if
      Hashtbl.length votes >= quorum_size t
      && leader_of t target = t.env.Env.self
    then install_new_view t target votes
  end

and install_new_view t target votes =
  let merged : (Types.seqno, Msg.prepared_entry) Hashtbl.t = Hashtbl.create 97 in
  let max_seq = ref t.last_applied in
  (* Re-proposals must start from the MINIMUM committed sequence among
     the view-change quorum: every slot at or below it was applied by
     all quorum members (committed sequences are contiguous), so
     lagging replicas can retrieve those slots from f+1 appliers, while
     everything above is re-ordered in the new view. *)
  let min_committed = ref max_int in
  let max_committed = ref 0 in
  Hashtbl.iter
    (fun _from (last_committed, prepared) ->
      if last_committed > !max_seq then max_seq := last_committed;
      if last_committed > !max_committed then max_committed := last_committed;
      if last_committed < !min_committed then min_committed := last_committed;
      List.iter
        (fun (e : Msg.prepared_entry) ->
          if e.Msg.entry_seq > !max_seq then max_seq := e.Msg.entry_seq;
          match Hashtbl.find_opt merged e.Msg.entry_seq with
          | Some prev when prev.Msg.entry_view >= e.Msg.entry_view -> ()
          | Some _ | None -> Hashtbl.replace merged e.Msg.entry_seq e)
        prepared)
    votes;
  (* No-op fillers are only safe for slots every reporter still retains
     (anything older may have been committed and garbage-collected by
     the appliers, and a filler would diverge from it). Cap the replay
     window accordingly; replicas further behind catch up by slot
     retrieval or state transfer instead. *)
  let retention_margin = 32 in
  let start =
    if !min_committed = max_int then t.last_applied
    else max !min_committed (!max_committed - retention_margin)
  in
  let nn = n t in
  let proposals =
    List.init
      (max 0 (!max_seq - start))
      (fun i ->
        let seq = start + 1 + i in
        match Hashtbl.find_opt merged seq with
        | Some e -> (seq, e.Msg.entry_matrix)
        | None -> (seq, Matrix.empty ~n:nn))
  in
  t.view <- target;
  prune_stale_views t;
  t.mode <- Normal;
  t.view_changes <- t.view_changes + 1;
  t.next_seq <- !max_seq + 1;
  t.last_proposed <- Matrix.empty ~n:nn;
  t.tat_violations <- 0;
  Queue.clear t.pending_tats;
  t.frontier <- Array.copy t.recv;
  t.frontier_since_us <- t.env.Env.now_us ();
  broadcast t (Msg.Newview { view = target; proposals });
  List.iter
    (fun (seq, matrix) -> accept_preprepare t ~view:target ~seq ~matrix)
    proposals

(* Jump to a view a quorum has demonstrably installed (used by
   replicas that were partitioned away during the view change). *)
let note_view_evidence t ~from ~view =
  if view > t.view then begin
    let voters =
      match Hashtbl.find_opt t.view_evidence view with
      | Some v -> v
      | None ->
        let v = Hashtbl.create 7 in
        Hashtbl.replace t.view_evidence view v;
        v
    in
    Hashtbl.replace voters from ();
    if Hashtbl.length voters >= Quorum.reply_threshold t.config.quorum then begin
      t.view <- view;
      prune_stale_views t;
      t.mode <- Normal;
      t.view_changes <- t.view_changes + 1;
      t.tat_violations <- 0;
      Queue.clear t.pending_tats;
      t.frontier <- Array.copy t.recv;
      t.frontier_since_us <- t.env.Env.now_us ();
      t.env.Env.trace (Printf.sprintf "adopted evidenced view v%d" view)
    end
  end

let adopt_new_view t ~view ~proposals =
  if view > t.view then begin
    t.view <- view;
    prune_stale_views t;
    t.mode <- Normal;
    t.view_changes <- t.view_changes + 1;
    t.tat_violations <- 0;
    Queue.clear t.pending_tats;
    t.frontier <- Array.copy t.recv;
    t.frontier_since_us <- t.env.Env.now_us ();
    List.iter
      (fun (seq, matrix) -> accept_preprepare t ~view ~seq ~matrix)
      proposals
  end

(* ------------------------------------------------------------------ *)
(* Leader proposals.                                                   *)

let current_summary t =
  (* Fold our own live vector into our row before summarising. *)
  let m = Matrix.copy t.rows in
  m.(t.env.Env.self) <- Matrix.merge_vector m.(t.env.Env.self) t.recv;
  m

let proposal_tick t =
  if
    (not t.halted) && (not t.faults.Faults.crashed) && is_leader t
    && t.mode = Normal
  then begin
    let summary = current_summary t in
    t.proposal_heartbeat <- t.proposal_heartbeat + 1;
    let heartbeat_due = t.proposal_heartbeat mod 50 = 0 in
    if (not (Matrix.equal summary t.last_proposed)) || heartbeat_due then begin
      t.last_proposed <- summary;
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      let proposal_view = t.view in
      let send () =
        if t.view = proposal_view && is_leader t then begin
          broadcast t (Msg.Preprepare { view = proposal_view; seq; matrix = summary });
          accept_preprepare t ~view:proposal_view ~seq ~matrix:summary
        end
      in
      let delay = t.faults.Faults.proposal_delay_us in
      if delay > 0 then
        ignore (t.env.Env.set_timer delay send : Sim.Engine.timer)
      else send ()
    end
  end

(* ------------------------------------------------------------------ *)
(* ARU exchange.                                                       *)

let aru_tick t =
  if (not t.halted) && not t.faults.Faults.crashed then begin
    t.aru_heartbeat <- t.aru_heartbeat + 1;
    let heartbeat_due = t.aru_heartbeat mod 20 = 0 in
    if t.aru_dirty || heartbeat_due then begin
      let was_dirty = t.aru_dirty in
      t.aru_dirty <- false;
      broadcast t (Msg.Po_aru { vector = Array.copy t.recv });
      (* Track the leader's turnaround for this report: we expect a
         pre-prepare whose row for us covers this much progress. *)
      if was_dirty && not (is_leader t) then
        Queue.push
          { target_total = vector_total t.recv; sent_us = t.env.Env.now_us () }
          t.pending_tats
    end
  end

(* ------------------------------------------------------------------ *)
(* Watchdog: TAT timeouts, view-change escalation, reconciliation
   retries, ordered-slot catch-up.                                     *)

let watchdog t =
  if (not t.halted) && not t.faults.Faults.crashed then begin
    let now = t.env.Env.now_us () in
    (* TAT probes that never completed count as violations. *)
    (match Queue.peek_opt t.pending_tats with
    | Some probe when now - probe.sent_us > t.tat_threshold_us ->
      ignore (Queue.pop t.pending_tats : tat_probe);
      record_tat_sample t (now - probe.sent_us)
    | Some _ | None -> ());
    (* Frontier lag: the pre-order frontier must become ordered within
       the TAT bound; otherwise the leader is withholding progress
       (covers silent leaders that never emit pre-prepares at all). *)
    if Matrix.vector_dominates t.cursor t.frontier then begin
      t.frontier <- Array.copy t.recv;
      t.frontier_since_us <- now
    end
    else if now - t.frontier_since_us > t.tat_threshold_us then begin
      t.tat_violations <- t.tat_violations + 1;
      if now - t.frontier_since_us > t.max_tat_us then
        t.max_tat_us <- now - t.frontier_since_us;
      t.frontier <- Array.copy t.recv;
      t.frontier_since_us <- now
    end;
    maybe_suspect t;
    (* View-change escalation. *)
    (match t.mode with
    | View_changing { target; since_us } ->
      if now - since_us > t.config.viewchange_timeout_us then
        start_view_change t (target + 1)
    | Normal -> ());
    (* Reconciliation retry for a stalled execution. *)
    (match t.stalled_on with
    | Some (origin, po_seq) when now - t.last_recon_us > t.config.recon_retry_us
      ->
      t.last_recon_us <- now;
      broadcast t (Msg.Recon_request { origin; po_seq })
    | Some _ | None -> ());
    (* Pre-order ARQ. A po_request is broadcast exactly once at
       submission; if that broadcast was lost (origin silenced, overlay
       daemon dark, site partitioned) peers can never acknowledge past
       the gap, and since unacknowledged pre-orders never become
       eligible, nothing downstream ever reconciles them — the origin's
       whole pipeline wedges permanently. Re-broadcast the oldest own
       pre-orders that an ordering quorum has not yet cumulatively
       acknowledged (per the Po_aru vectors peers report). *)
    let last_own = t.po_next_seq - 1 in
    if last_own >= 1 && now - t.last_po_resend_us > t.config.recon_retry_us
    then begin
      let self = t.env.Env.self in
      let acks = Array.map (fun row -> row.(self)) t.rows in
      Array.sort compare acks;
      (* The quorum-ack watermark: the q-th largest reported aru for our
         origin. Stale rows from up to [n - q] crashed or lagging peers
         cannot hold it down. *)
      let quorum_ack = acks.(Array.length acks - quorum_size t) in
      if quorum_ack < last_own then begin
        t.last_po_resend_us <- now;
        for s = quorum_ack + 1 to min last_own (quorum_ack + 8) do
          match Hashtbl.find_opt t.po_store (self, s) with
          | Some update ->
            broadcast t (Msg.Po_request { origin = self; po_seq = s; update })
          | None -> ()
        done
      end
    end;
    (* A long stall with peers demonstrably ahead means slot retrieval
       is not converging (the missing slots may have too few appliers);
       escalate to state transfer. *)
    if
      t.max_seq_seen > t.last_applied
      && now - max t.last_apply_us t.last_fall_behind_us
         > 20 * t.config.recon_retry_us
    then begin
      t.last_fall_behind_us <- now;
      t.on_fall_behind ()
    end;
    let next = t.last_applied + 1 in
    let next_uncommitted =
      match Hashtbl.find_opt t.slots next with
      | Some s -> not s.committed
      | None -> true
    in
    (* Leader hole repair: we proposed past [next] but [next] never
       committed — the pre-prepare may have been lost in transit (e.g.
       our overlay daemon was dark when it went out). Re-broadcast the
       pre-prepares for the lowest uncommitted slots we still hold at
       the current view; duplicates are idempotent at receivers.
       Without this, a hole below already-committed slots wedges the
       whole deployment: slot retrieval only serves applied slots, and
       nobody can apply anything past the hole. *)
    if
      is_leader t && t.mode = Normal && next_uncommitted
      && t.next_seq > next
      && now - max t.last_apply_us t.last_repair_us > t.config.recon_retry_us
    then begin
      t.last_repair_us <- now;
      let continue = ref true in
      let i = ref 0 in
      while !continue && !i < 8 do
        (match Hashtbl.find_opt t.slots (next + !i) with
        | Some s when s.slot_view = t.view -> (
          if not s.committed then
            match s.matrix with
            | Some matrix ->
              broadcast t
                (Msg.Preprepare { view = t.view; seq = next + !i; matrix })
            | None -> continue := false)
        | Some _ | None -> continue := false);
        incr i
      done
    end;
    (* Ordered-slot catch-up: peers referenced sequences beyond what we
       have applied, and we are making no local progress — we missed
       ordering traffic (e.g. a Byzantine leader excludes us). Fetch the
       hole from peers; adoption needs f+1 matching replies. *)
    if
      next_uncommitted
      && t.max_seq_seen > t.last_applied
      && now - max t.last_apply_us t.last_recon_us > t.config.recon_retry_us
    then begin
      t.last_recon_us <- now;
      broadcast t (Msg.Slot_request { seq = next })
    end
  end

let start t =
  if not t.running then begin
    t.running <- true;
    let rec arm interval f =
      ignore
        (t.env.Env.set_timer interval (fun () ->
             if not t.halted then begin
               f t;
               arm interval f
             end)
          : Sim.Engine.timer)
    in
    arm t.config.aru_interval_us aru_tick;
    arm t.config.proposal_interval_us proposal_tick;
    arm t.config.watchdog_interval_us watchdog
  end

(* ------------------------------------------------------------------ *)
(* Entry points.                                                       *)

(* Flush the pre-order accumulator: assign consecutive po_seqs, store
   every body locally, and broadcast one frame for the lot. A singleton
   flush emits the legacy [Po_request] so the wire trajectory at
   [max_batch = 1] stays bit-identical to the unbatched pipeline. *)
let flush_po t =
  if not (Batch.is_empty t.po_acc) then begin
    let updates = Batch.take_all t.po_acc in
    let origin = t.env.Env.self in
    let first_seq = t.po_next_seq in
    List.iteri
      (fun i u -> ignore (store_body t ~origin ~po_seq:(first_seq + i) u : bool))
      updates;
    t.po_next_seq <- first_seq + List.length updates;
    match updates with
    | [ update ] ->
      broadcast t (Msg.Po_request { origin; po_seq = first_seq; update })
    | updates -> broadcast t (Msg.Po_batch { origin; first_seq; updates })
  end

let flush_po_due t =
  if (not t.halted) && not t.faults.Faults.crashed then
    (* Only flush the generation this timer was armed for: if the
       buffer flushed early on size and refilled, its deadline moved. *)
    match Batch.deadline_us t.po_acc with
    | Some d when d <= t.env.Env.now_us () -> flush_po t
    | Some _ | None -> ()

let submit t update =
  if (not t.halted) && not t.faults.Faults.crashed then begin
    let key = Update.key update in
    if not (Delivery.seen t.delivery key) then
      if Batch.is_singleton t.batch then begin
        let po_seq = t.po_next_seq in
        t.po_next_seq <- po_seq + 1;
        let origin = t.env.Env.self in
        ignore (store_body t ~origin ~po_seq update : bool);
        broadcast t (Msg.Po_request { origin; po_seq; update })
      end
      else begin
        Batch.push t.po_acc ~now:(t.env.Env.now_us ()) update;
        if Batch.full t.po_acc then flush_po t
        else if Batch.length t.po_acc = 1 then
          ignore
            (t.env.Env.set_timer t.batch.Batch.max_delay_us (fun () ->
                 flush_po_due t)
              : Sim.Engine.timer)
      end
  end

(* ------------------------------------------------------------------ *)
(* Runtime tuning plane: live-settable knobs.                          *)

let tat_threshold_us t = t.tat_threshold_us

let set_tat_threshold t us =
  if us <= 0 then invalid_arg "Replica.set_tat_threshold: non-positive";
  t.tat_threshold_us <- us

let set_tat_violations_to_suspect t k =
  if k < 1 then invalid_arg "Replica.set_tat_violations_to_suspect: < 1";
  t.tat_violations_to_suspect <- k

let set_batch_policy t p =
  t.batch <- Batch.validate p;
  Batch.set_policy t.po_acc p;
  (* A shrink can make the buffered pre-order generation due right now
     (size bound crossed, or deadline moved into the past): drain it.
     The generation's old timer stays armed but is harmless — it
     re-checks [deadline_us] before flushing. *)
  if (not t.halted) && not t.faults.Faults.crashed then begin
    if Batch.full t.po_acc then flush_po t
    else
      match Batch.deadline_us t.po_acc with
      | Some d when d <= t.env.Env.now_us () -> flush_po t
      | Some _ | None -> ()
  end

(* Controller-initiated leader demotion: suspect the current leader
   immediately, without waiting for [tat_violations_to_suspect] local
   TAT evidence. Same broadcast path as [maybe_suspect] — rotation
   still needs [Quorum.suspect_threshold] distinct suspicions, so a
   single compromised (or over-eager) controller cannot depose a
   correct leader on its own. No-op if we already suspected this view
   or are the leader ourselves. *)
let demote_leader t =
  if
    (not t.halted)
    && (not t.faults.Faults.crashed)
    && t.suspected_view < t.view
    && not (is_leader t)
  then begin
    t.suspected_view <- t.view;
    t.tat_violations <- 0;
    t.env.Env.trace (Printf.sprintf "demote: suspect leader of v%d" t.view);
    broadcast t (Msg.Suspect { view = t.view });
    record_suspect t ~from:t.env.Env.self ~view:t.view;
    true
  end
  else false

let handle t ~from msg =
  if (not t.halted) && not t.faults.Faults.crashed then begin
    if from >= 0 && from < n t then
      t.last_heard_us.(from) <- t.env.Env.now_us ();
    match msg with
    | Msg.Po_request { origin; po_seq; update } ->
      if origin = from then begin
        ignore (store_body t ~origin ~po_seq update : bool);
        if t.stalled_on = Some (origin, po_seq) then drain_exec t
      end
    | Msg.Po_batch { origin; first_seq; updates } ->
      if origin = from then
        List.iteri
          (fun i u ->
            let po_seq = first_seq + i in
            ignore (store_body t ~origin ~po_seq u : bool);
            if t.stalled_on = Some (origin, po_seq) then drain_exec t)
          updates
    | Msg.Po_aru { vector } ->
      if Array.length vector = n t then
        t.rows.(from) <- Matrix.merge_vector t.rows.(from) vector
    | Msg.Preprepare { view; seq; matrix } ->
      if seq > t.max_seq_seen then t.max_seq_seen <- seq;
      note_view_evidence t ~from ~view;
      (* Safety-critical: once this replica has voted for a view change
         its reported prepared set is frozen — participating further in
         the old view's ordering would let slots commit without
         appearing in any view-change report. *)
      if t.mode = Normal && view = t.view && from = leader_of t view then begin
        process_tat_on_preprepare t matrix;
        accept_preprepare t ~view ~seq ~matrix
      end
    | Msg.Prepare { view; seq; digest } ->
      if seq > t.max_seq_seen then t.max_seq_seen <- seq;
      note_view_evidence t ~from ~view;
      if t.mode = Normal && seq > t.last_applied then begin
        let s = slot t seq in
        match s.digest with
        | Some d when view = s.slot_view ->
          if Cryptosim.Digest.equal d digest then begin
            Hashtbl.replace s.prepares from ();
            maybe_prepared t seq
          end
        | Some _ | None -> Hashtbl.replace s.buffered_prepares from (view, digest)
      end
    | Msg.Commit { view; seq; digest } ->
      if seq > t.max_seq_seen then t.max_seq_seen <- seq;
      note_view_evidence t ~from ~view;
      if t.mode = Normal && seq > t.last_applied then begin
        let s = slot t seq in
        match s.digest with
        | Some d when view = s.slot_view && Cryptosim.Digest.equal d digest ->
          Hashtbl.replace s.commits from ();
          maybe_committed t seq
        | Some _ | None -> Hashtbl.replace s.buffered_commits from (view, digest)
      end
    | Msg.Suspect { view } -> record_suspect t ~from ~view
    | Msg.Viewchange { new_view; last_committed; prepared } ->
      record_vc_vote t ~from ~target:new_view ~last_committed ~prepared
    | Msg.Newview { view; proposals } ->
      if from = leader_of t view then adopt_new_view t ~view ~proposals
    | Msg.Recon_request { origin; po_seq } -> (
      match Hashtbl.find_opt t.po_store (origin, po_seq) with
      | Some update -> send_to t from (Msg.Recon_reply { origin; po_seq; update })
      | None -> ())
    | Msg.Recon_reply { origin; po_seq; update } ->
      ignore (store_body t ~origin ~po_seq update : bool);
      if t.stalled_on = Some (origin, po_seq) then begin
        t.stalled_on <- None;
        drain_exec t
      end
    | Msg.Slot_request { seq } ->
      (* Serve a batch of consecutive applied slots to speed catch-up. *)
      let continue = ref true in
      let i = ref 0 in
      while !continue && !i < 8 do
        (match Hashtbl.find_opt t.applied_matrices (seq + !i) with
        | Some matrix ->
          send_to t from (Msg.Slot_reply { seq = seq + !i; matrix })
        | None -> continue := false);
        incr i
      done
    | Msg.Slot_reply { seq; matrix } ->
      if seq > t.last_applied then begin
        let digest = Matrix.digest matrix in
        let voters, _ =
          match Hashtbl.find_opt t.slot_reply_votes (seq, digest) with
          | Some v -> v
          | None ->
            let v = (Hashtbl.create 7, matrix) in
            Hashtbl.replace t.slot_reply_votes (seq, digest) v;
            v
        in
        Hashtbl.replace voters from ();
        if Hashtbl.length voters >= Quorum.reply_threshold t.config.quorum
        then begin
          (* f+1 matching replies: at least one correct replica applied
             this matrix at this slot. Adopt it. *)
          let s = slot t seq in
          if not s.committed then begin
            s.matrix <- Some matrix;
            s.digest <- Some digest;
            s.committed <- true;
            s.prepared <- true;
            drain_exec t;
            (* Chain: if still behind, request the next hole without
               waiting for the watchdog (rate-limited lightly). *)
            let now = t.env.Env.now_us () in
            if
              t.max_seq_seen > t.last_applied
              && now - t.last_recon_us > 2_000
            then begin
              t.last_recon_us <- now;
              broadcast t (Msg.Slot_request { seq = t.last_applied + 1 })
            end
          end
        end
      end
    | Msg.Checkpoint { executed; chain } ->
      record_checkpoint_vote t ~from ~executed ~chain
  end

(* ------------------------------------------------------------------ *)
(* State transfer.                                                     *)

let snapshot t =
  {
    snap_exec_count = Exec_log.length t.log;
    snap_chain = Exec_log.chain_digest t.log;
    snap_cursor = Array.copy t.cursor;
    snap_last_applied = t.last_applied;
    snap_cum_matrix = Matrix.copy t.cum_matrix;
    snap_view = t.view;
    snap_delivery = Delivery.state t.delivery;
  }

let snapshot_digest s =
  let cursor_str =
    String.concat "," (Array.to_list (Array.map string_of_int s.snap_cursor))
  in
  Cryptosim.Digest.combine
    (Cryptosim.Digest.of_string
       (Printf.sprintf "snap:%d:%d:%d:%s" s.snap_exec_count s.snap_last_applied
          s.snap_view cursor_str))
    (Cryptosim.Digest.combine
       (Cryptosim.Digest.combine s.snap_chain (Matrix.digest s.snap_cum_matrix))
       (Delivery.digest_of_state s.snap_delivery))

let install_snapshot t s =
  Exec_log.install_snapshot t.log ~updates:s.snap_exec_count
    ~chain:s.snap_chain;
  t.cursor <- Array.copy s.snap_cursor;
  Delivery.install t.delivery s.snap_delivery;
  t.last_applied <- s.snap_last_applied;
  t.cum_matrix <- Matrix.copy s.snap_cum_matrix;
  t.view <- max t.view s.snap_view;
  t.mode <- Normal;
  (* Transient protocol state is rebuilt from live traffic. *)
  Hashtbl.reset t.slots;
  Hashtbl.reset t.applied_matrices;
  Hashtbl.reset t.po_store;
  ignore (Batch.take_all t.po_acc : Update.t list);
  t.recv <- Array.copy s.snap_cursor;
  t.rows <- Matrix.empty ~n:(n t);
  t.rows.(t.env.Env.self) <- Array.copy t.recv;
  t.aru_dirty <- true;
  t.stalled_on <- None;
  Queue.clear t.pending_tats;
  t.tat_violations <- 0;
  t.suspected_view <- t.view - 1;
  Hashtbl.reset t.suspects;
  Hashtbl.reset t.vc_votes;
  Hashtbl.reset t.view_evidence;
  Hashtbl.reset t.ckpt_votes;
  Hashtbl.reset t.slot_reply_votes;
  t.stable_exec <- s.snap_exec_count;
  t.last_proposed <- Matrix.empty ~n:(n t);
  (* Monotone: never step back below sequences we already proposed —
     re-burning a sequence number with a fresh matrix would equivocate
     against any replica that committed the original. *)
  t.next_seq <- max t.next_seq (s.snap_last_applied + 1)
