(** Prime replica state machine — bounded-delay Byzantine replication.

    Prime is the replication engine of Spire. Its distinguishing
    guarantee is {e performance under attack}: a malicious leader cannot
    silently slow the system, because

    + client updates are {e pre-ordered} by all replicas independently of
      the leader (PO-Request dissemination + cumulative PO-ARU vector
      exchange, {!Matrix});
    + the leader's only job is to periodically propose a {e summary
      matrix} of everyone's vectors; whether it does so promptly is
      measurable by every replica (the {e turnaround time}, TAT);
    + a leader whose measured TAT exceeds the acceptable bound —
      computed from measured network round-trips — is {e suspected}, and
      [f + k + 1] suspicions trigger a deterministic leader rotation.

    Hence a faulty leader can delay updates by at most the TAT bound
    before losing the role, whereas the PBFT baseline ({!Pbft.Replica})
    tolerates delays up to its full request timeout forever.

    Simplifications (documented in DESIGN.md): PO-Acks are folded into
    the cumulative PO-ARU exchange; signatures/certificates are carried
    by the authenticated transport; reconciliation fetches missing
    bodies by broadcast request. The timing-relevant message flow
    matches the published protocol. *)

type config = {
  quorum : Bft.Quorum.t;
  epoch : int;
      (** membership epoch this instance belongs to (0 = genesis); the
          deployment layer tags and filters frames by it — the instance
          carries it so quorum decisions are attributable to one
          membership certificate *)
  aru_interval_us : int;
      (** cadence of cumulative vector (PO-ARU) exchange *)
  proposal_interval_us : int;  (** leader's summary-matrix cadence *)
  tat_threshold_us : int;
      (** acceptable turnaround bound; deployments derive it from the
          network diameter: ~2 x max correct RTT + proposal interval *)
  tat_violations_to_suspect : int;
  viewchange_timeout_us : int;
  checkpoint_interval : int;  (** executions between checkpoints *)
  watchdog_interval_us : int;
  recon_retry_us : int;  (** retry cadence for missing bodies/slots *)
  batch : Bft.Batch.policy;
      (** pre-order aggregation: own submissions accumulate until
          [max_batch] or [max_delay_us] and ship as one [Po_batch]
          occupying consecutive po_seqs; [Batch.singleton] (default)
          bypasses the accumulator and emits legacy [Po_request]s *)
}

(** [default_config quorum] uses LAN-scale defaults: 5 ms ARU cadence,
    10 ms proposals, 150 ms TAT bound, 3 violations to suspect. *)
val default_config : Bft.Quorum.t -> config

type t

val create :
  config ->
  Msg.t Bft.Env.t ->
  execute:(int -> Bft.Update.t -> unit) ->
  t
(** [execute idx update]: [idx] is the 1-based global execution index. *)

(** [start t] arms the periodic timers (ARU exchange, proposals,
    watchdog). Call once. *)
val start : t -> unit

(** [submit t update] makes this replica the originator of [update]:
    it assigns a local pre-order sequence and disseminates a
    PO-Request. Duplicate keys already executed or pre-ordered by this
    origin are ignored. *)
val submit : t -> Bft.Update.t -> unit

val handle : t -> from:Bft.Types.replica -> Msg.t -> unit
val faults : t -> Bft.Faults.t
val view : t -> Bft.Types.view
val is_leader : t -> bool
val exec_log : t -> Bft.Exec_log.t

(** [executed_count t] is the number of updates executed. *)
val executed_count : t -> int

(** [last_applied t] is the highest ordered slot applied. *)
val last_applied : t -> Bft.Types.seqno

(** [recv_vector t] is a copy of the replica's cumulative pre-order
    vector. *)
val recv_vector : t -> Matrix.vector

val view_changes : t -> int

(** [max_tat_us t] is the largest turnaround time observed so far (0 if
    none completed). *)
val max_tat_us : t -> int

(** [suspected t] says whether this replica currently suspects the
    leader of its view. *)
val suspected : t -> bool

(** {1 Runtime tuning plane}

    Live-settable knobs, hot-swapped on a running replica by the
    control layer ({!Control}). Each setter validates its argument and
    takes effect from the next protocol step; none of them sends a
    frame, draws randomness or arms a timer by itself (except
    [set_batch_policy] draining an already-due generation and
    [demote_leader], whose effects are documented), so with no
    controller issuing changes the trajectory is untouched. *)

(** [tat_threshold_us t] is the current (possibly hot-swapped)
    turnaround bound. *)
val tat_threshold_us : t -> int

(** [set_tat_threshold t us] swaps the TAT suspicion bound; applies to
    the next sample/watchdog check. In-flight probes are judged under
    the new bound.
    @raise Invalid_argument if [us <= 0]. *)
val set_tat_threshold : t -> int -> unit

(** [set_tat_violations_to_suspect t k] swaps the consecutive-violation
    count that triggers suspicion.
    @raise Invalid_argument if [k < 1]. *)
val set_tat_violations_to_suspect : t -> int -> unit

(** [set_batch_policy t p] swaps the pre-order batching policy on the
    live accumulator. If the swap makes the buffered generation due
    (new [max_batch] at or below the buffered length, or a shorter
    deadline now in the past) it is flushed immediately; the stale
    generation timer stays armed and re-checks the deadline, so no
    update is ever flushed twice or lost.
    @raise Invalid_argument on an invalid policy. *)
val set_batch_policy : t -> Bft.Batch.policy -> unit

(** [demote_leader t] suspects the current view's leader immediately
    (controller-initiated), bypassing the local TAT evidence count but
    not the protocol: rotation still requires [f + k + 1] distinct
    suspicions, so a lone demotion request cannot depose a correct
    leader. Returns [false] (no-op) if this replica already suspected
    this view, is itself the leader, or is crashed/halted. *)
val demote_leader : t -> bool

(** [retained_suspect_views t] is the number of per-view vote tables
    currently held (suspicions + view-change votes + view evidence).
    Stale views are pruned at every view advance, so this stays bounded
    on long soaks — see the leak regression test. *)
val retained_suspect_views : t -> int

(** {1 Epoch cutover} *)

(** [epoch t] is the membership epoch from the config. *)
val epoch : t -> int

(** [halt t] stops the instance one-way at an epoch boundary: the
    in-progress eligibility batch (if halting from inside [execute])
    still completes — its release is agreed, so the boundary execution
    count is deterministic across replicas — after which the instance
    neither sends, receives, executes, nor re-arms timers.  The
    successor epoch runs in a fresh instance seeded from
    {!snapshot}-shaped state. *)
val halt : t -> unit

val halted : t -> bool

(** {1 State transfer (used by proactive recovery)} *)

type snapshot = {
  snap_exec_count : int;
  snap_chain : Cryptosim.Digest.t;
  snap_cursor : Matrix.vector;  (** per-origin executed cursor *)
  snap_last_applied : Bft.Types.seqno;
  snap_cum_matrix : Matrix.t;
  snap_view : Bft.Types.view;
  snap_delivery : Bft.Delivery.state;
      (** exactly-once delivery filter state (per-client cursors) *)
}

(** [snapshot t] captures the durable application-visible state. *)
val snapshot : t -> snapshot

(** [snapshot_digest s] identifies a snapshot for f+1 cross-validation. *)
val snapshot_digest : snapshot -> Cryptosim.Digest.t

(** [install_snapshot t s] adopts [s], discarding transient protocol
    state. The replica's own pre-order sequence counter survives (it is
    identity, not state — see DESIGN.md on recovery). *)
val install_snapshot : t -> snapshot -> unit

(** [unresponsive t ~threshold_us] lists peers from which nothing has
    been received for at least [threshold_us] — the local evidence fed
    into accusation-based reactive recovery. *)
val unresponsive : t -> threshold_us:int -> Bft.Types.replica list

(** [applied_matrix_digest t seq] — digest of the matrix applied at
    ordered slot [seq], if still retained (introspection/debugging). *)
val applied_matrix_digest : t -> Bft.Types.seqno -> Cryptosim.Digest.t option

(** [set_on_fall_behind t f] — [f] fires (rate-limited) when a quorum
    checkpoint certificate proves this replica is too far behind for
    slot retrieval to catch it up; the deployment should respond with a
    state transfer. *)
val set_on_fall_behind : t -> (unit -> unit) -> unit
