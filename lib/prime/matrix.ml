type vector = int array
type t = vector array

let empty_vector ~n = Array.make n 0
let empty ~n = Array.init n (fun _ -> empty_vector ~n)
let copy m = Array.map Array.copy m

let merge_vector a b =
  if Array.length a <> Array.length b then
    invalid_arg "Matrix.merge_vector: length mismatch";
  Array.init (Array.length a) (fun i -> max a.(i) b.(i))

let merge a b =
  if Array.length a <> Array.length b then
    invalid_arg "Matrix.merge: size mismatch";
  Array.init (Array.length a) (fun i -> merge_vector a.(i) b.(i))

let set_row m ~row v =
  let m' = copy m in
  m'.(row) <- merge_vector m'.(row) v;
  m'

let eligible m ~threshold =
  let n = Array.length m in
  if threshold < 1 || threshold > n then
    invalid_arg "Matrix.eligible: threshold out of range";
  Array.init n (fun j ->
      let column = Array.init n (fun i -> m.(i).(j)) in
      Array.sort (fun a b -> compare b a) column;
      (* After a descending sort, element [threshold-1] is the largest
         value reported by at least [threshold] rows. *)
      column.(threshold - 1))

let digest m =
  let buf = Buffer.create 256 in
  Array.iter
    (fun row ->
      Array.iter
        (fun v ->
          Buffer.add_string buf (string_of_int v);
          Buffer.add_char buf ',')
        row;
      Buffer.add_char buf ';')
    m;
  Cryptosim.Digest.of_string (Buffer.contents buf)

let vector_dominates a b =
  let ok = ref true in
  Array.iteri (fun i v -> if v < b.(i) then ok := false) a;
  !ok

let is_empty m = Array.for_all (Array.for_all (fun v -> v = 0)) m

let equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun ra rb -> ra = rb) a b

let pp_vector ppf v =
  Format.fprintf ppf "[%s]"
    (String.concat ";" (Array.to_list (Array.map string_of_int v)))

let pp ppf m =
  Array.iter (fun row -> Format.fprintf ppf "%a@ " pp_vector row) m
