(* Reconfiguration commands.

   A reconfiguration is an ordered list of actions applied atomically
   to the current certificate to produce the next epoch's certificate.
   The command travels through the ordinary BFT ordered stream as an
   opaque SCADA operation payload (so the ordering layer needs no new
   message types on the critical path), and every replica that executes
   it derives the same successor certificate at the same boundary.

   The codec is hand-rolled and versioned: reconfiguration frames may
   be replayed from logs across epochs, so the encoding must stay
   stable independently of in-memory representation. *)

type action =
  | Set_resilience of { f : int; k : int }
  | Remove_site of int
  | Add_site of { site_id : int; role : Cert.role; members : int list }
  | Promote of int  (* backup control center -> active *)

type t = action list

let version = 1

let pp_action ppf = function
  | Set_resilience { f; k } -> Format.fprintf ppf "set-resilience f=%d k=%d" f k
  | Remove_site s -> Format.fprintf ppf "remove-site %d" s
  | Add_site { site_id; role; members } ->
    Format.fprintf ppf "add-site %d %s {%s}" site_id (Cert.role_name role)
      (String.concat "," (List.map string_of_int members))
  | Promote s -> Format.fprintf ppf "promote %d" s

let pp ppf t =
  Format.fprintf ppf "[%s]"
    (String.concat "; "
       (List.map (fun a -> Format.asprintf "%a" pp_action a) t))

let role_to_tag = function
  | Cert.Active_cc -> 0
  | Cert.Backup_cc -> 1
  | Cert.Data_center -> 2

let role_of_tag = function
  | 0 -> Some Cert.Active_cc
  | 1 -> Some Cert.Backup_cc
  | 2 -> Some Cert.Data_center
  | _ -> None

let w_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let w_u16 b v =
  w_u8 b (v lsr 8);
  w_u8 b v

let encode (t : t) =
  let b = Buffer.create 32 in
  w_u8 b version;
  w_u8 b (List.length t);
  List.iter
    (fun a ->
      match a with
      | Set_resilience { f; k } ->
        w_u8 b 0x01;
        w_u8 b f;
        w_u8 b k
      | Remove_site s ->
        w_u8 b 0x02;
        w_u16 b s
      | Add_site { site_id; role; members } ->
        w_u8 b 0x03;
        w_u16 b site_id;
        w_u8 b (role_to_tag role);
        w_u8 b (List.length members);
        List.iter (fun m -> w_u16 b m) members
      | Promote s ->
        w_u8 b 0x04;
        w_u16 b s)
    t;
  Buffer.contents b

exception Bad of string

let decode s =
  let pos = ref 0 in
  let len = String.length s in
  let u8 () =
    if !pos >= len then raise (Bad "truncated");
    let v = Char.code s.[!pos] in
    incr pos;
    v
  in
  let u16 () =
    let hi = u8 () in
    let lo = u8 () in
    (hi lsl 8) lor lo
  in
  try
    if u8 () <> version then raise (Bad "unknown version");
    let count = u8 () in
    let actions = ref [] in
    for _ = 1 to count do
      let a =
        match u8 () with
        | 0x01 ->
          let f = u8 () in
          let k = u8 () in
          Set_resilience { f; k }
        | 0x02 -> Remove_site (u16 ())
        | 0x03 ->
          let site_id = u16 () in
          let role =
            match role_of_tag (u8 ()) with
            | Some r -> r
            | None -> raise (Bad "unknown role")
          in
          let n = u8 () in
          let members = List.init n (fun _ -> u16 ()) in
          Add_site { site_id; role; members }
        | 0x04 -> Promote (u16 ())
        | _ -> raise (Bad "unknown action")
      in
      actions := a :: !actions
    done;
    if !pos <> len then raise (Bad "trailing bytes");
    Ok (List.rev !actions)
  with Bad e -> Error e

(* Apply one action to a working site list / resilience pair.  Promote
   demotes the current active control center; Add_site may re-admit a
   previously removed site id. *)
let apply_action (f, k, sites) = function
  | Set_resilience { f = f'; k = k' } ->
    if f' < 0 || k' < 0 then Error "negative resilience parameter"
    else Ok (f', k', sites)
  | Remove_site id ->
    if not (List.exists (fun (s : Cert.site) -> s.site_id = id) sites) then
      Error (Printf.sprintf "remove: unknown site %d" id)
    else Ok (f, k, List.filter (fun (s : Cert.site) -> s.site_id <> id) sites)
  | Add_site { site_id; role; members } ->
    if List.exists (fun (s : Cert.site) -> s.site_id = site_id) sites then
      Error (Printf.sprintf "add: site %d already present" site_id)
    else if members = [] then Error "add: empty site"
    else if role = Cert.Active_cc then
      Error "add: new sites join as backup or data center"
    else
      let existing = List.concat_map (fun (s : Cert.site) -> s.members) sites in
      if List.exists (fun m -> List.mem m existing) members then
        Error "add: member already in another site"
      else Ok (f, k, sites @ [ { Cert.site_id; role; members } ])
  | Promote id -> (
    match List.find_opt (fun (s : Cert.site) -> s.site_id = id) sites with
    | None -> Error (Printf.sprintf "promote: unknown site %d" id)
    | Some s when s.role = Cert.Data_center ->
      Error (Printf.sprintf "promote: site %d is a data center" id)
    | Some _ ->
      Ok
        ( f,
          k,
          List.map
            (fun (s : Cert.site) ->
              if s.site_id = id then { s with role = Cert.Active_cc }
              else if s.role = Cert.Active_cc then
                { s with role = Cert.Backup_cc }
              else s)
            sites ))

let apply (prev : Cert.t) (t : t) ~signers ~boundary_exec =
  if t = [] then Error "empty reconfiguration"
  else
    let rec fold acc = function
      | [] -> Ok acc
      | a :: rest -> (
        match apply_action acc a with
        | Ok acc' -> fold acc' rest
        | Error _ as e -> e)
    in
    match fold (prev.Cert.f, prev.Cert.k, prev.Cert.sites) t with
    | Error e -> Error e
    | Ok (f, k, sites) -> (
      let next =
        {
          Cert.epoch = prev.Cert.epoch + 1;
          f;
          k;
          boundary_exec;
          sites;
          signers;
          prev_digest = Cert.digest prev;
        }
      in
      match Cert.verify_succession ~prev ~next with
      | Ok () -> Ok next
      | Error e -> Error e)
