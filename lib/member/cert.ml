(* Epoch-ed membership certificates.

   A certificate is the authoritative description of one epoch of the
   system: which sites exist, what role each plays (modeled on the
   SCADA_SV_MODES active/backup split of the reference implementation),
   which global replica ids belong to each site, and the resilience
   parameters (f, k) the epoch is provisioned for.  Certificates form a
   hash chain: each non-genesis cert carries the digest of its
   predecessor, the ordered-stream execution index at which it takes
   effect (the epoch boundary), and the set of old-epoch members that
   vouched for the transition.  Succession is only valid when at least
   a quorum of the previous epoch signed, which is what makes "no two
   epochs active simultaneously" checkable by the oracle. *)

type role = Active_cc | Backup_cc | Data_center

let role_name = function
  | Active_cc -> "active-cc"
  | Backup_cc -> "backup-cc"
  | Data_center -> "data-center"

let role_tag = function Active_cc -> 0 | Backup_cc -> 1 | Data_center -> 2

type site = { site_id : int; role : role; members : int list }

type t = {
  epoch : int;
  f : int;
  k : int;
  boundary_exec : int;
      (* execution index at which this epoch takes effect; 0 for genesis *)
  sites : site list;
  signers : int list; (* previous-epoch members vouching the transition *)
  prev_digest : Cryptosim.Digest.t; (* zero for genesis *)
}

let epoch t = t.epoch
let f t = t.f
let k t = t.k
let boundary_exec t = t.boundary_exec
let sites t = t.sites
let signers t = t.signers
let prev_digest t = t.prev_digest

let members t =
  List.concat_map (fun s -> s.members) t.sites

let n t = List.length (members t)

(* Spire sizing: n = 3f + 2k + 1 replicas tolerate f intrusions plus k
   simultaneously recovering replicas.  An epoch may over-provision
   (n larger than required) but never under-provision. *)
let required_n ~f ~k = (3 * f) + (2 * k) + 1
let quorum_size t = (2 * t.f) + t.k + 1
let reply_threshold t = t.f + 1

let site_of t ~site_id =
  List.find_opt (fun s -> s.site_id = site_id) t.sites

let is_member t r = List.mem r (members t)

(* Rank is a replica's dense protocol index within the epoch: position
   in the concatenated site-ordered member list.  Protocol instances
   are parameterized by rank; the wire keeps global ids. *)
let rank_of t r =
  let rec find i = function
    | [] -> None
    | m :: rest -> if m = r then Some i else find (i + 1) rest
  in
  find 0 (members t)

let member_of_rank t rank = List.nth_opt (members t) rank

let validate t =
  let ms = members t in
  let nm = List.length ms in
  if t.f < 0 || t.k < 0 then Error "negative resilience parameter"
  else if t.sites = [] then Error "no sites"
  else if List.exists (fun s -> s.members = []) t.sites then
    Error "empty site"
  else if List.length (List.sort_uniq compare ms) <> nm then
    Error "duplicate member across sites"
  else if
    List.length
      (List.sort_uniq compare (List.map (fun s -> s.site_id) t.sites))
    <> List.length t.sites
  then Error "duplicate site id"
  else if List.exists (fun m -> m < 0) ms then Error "negative member id"
  else if nm < required_n ~f:t.f ~k:t.k then
    Error
      (Printf.sprintf "n=%d below 3f+2k+1=%d" nm (required_n ~f:t.f ~k:t.k))
  else if not (List.exists (fun s -> s.role = Active_cc) t.sites) then
    Error "no active control center"
  else if
    List.length (List.filter (fun s -> s.role = Active_cc) t.sites) > 1
  then Error "multiple active control centers"
  else Ok ()

(* Canonical serialization feeding the chain digest.  Signers are part
   of the digested content so a transition cannot be re-attributed. *)
let canonical t =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "cert|e=%d|f=%d|k=%d|b=%d|" t.epoch t.f t.k
       t.boundary_exec);
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "s%d:%d:[%s];" s.site_id (role_tag s.role)
           (String.concat "," (List.map string_of_int s.members))))
    t.sites;
  Buffer.add_string b
    (Printf.sprintf "|v=[%s]|p=%s"
       (String.concat "," (List.map string_of_int t.signers))
       (Cryptosim.Digest.to_hex t.prev_digest));
  Buffer.contents b

let digest t = Cryptosim.Digest.of_string (canonical t)

(* Succession: [next] extends [prev] iff the chain links, the boundary
   advances, and at least a quorum of [prev]'s members vouched. *)
let verify_succession ~prev ~next =
  if next.epoch <> prev.epoch + 1 then Error "non-consecutive epoch"
  else if not (Cryptosim.Digest.equal next.prev_digest (digest prev)) then
    Error "broken digest chain"
  else if next.boundary_exec < prev.boundary_exec then
    Error "boundary moved backwards"
  else if
    List.exists (fun s -> not (is_member prev s)) next.signers
  then Error "signer not a previous-epoch member"
  else if
    List.length (List.sort_uniq compare next.signers) < quorum_size prev
  then
    Error
      (Printf.sprintf "only %d signers, need previous-epoch quorum %d"
         (List.length (List.sort_uniq compare next.signers))
         (quorum_size prev))
  else validate next

let genesis ~f ~k ~sites =
  let t =
    {
      epoch = 0;
      f;
      k;
      boundary_exec = 0;
      sites;
      signers = [];
      prev_digest = Cryptosim.Digest.of_int64 0L;
    }
  in
  match validate t with
  | Ok () -> t
  | Error e -> invalid_arg ("Member.Cert.genesis: " ^ e)

let pp ppf t =
  Format.fprintf ppf "epoch %d (f=%d k=%d n=%d @@%d) [%s]" t.epoch t.f t.k
    (n t) t.boundary_exec
    (String.concat "; "
       (List.map
          (fun s ->
            Printf.sprintf "site %d %s {%s}" s.site_id (role_name s.role)
              (String.concat "," (List.map string_of_int s.members)))
          t.sites))
