(** Epoch-ed membership certificates.

    One certificate per epoch: site list with active/backup control
    center roles, global replica ids per site, resilience parameters
    (f, k), and the hash-chain link to the previous epoch.  A
    transition is valid only when vouched by a quorum of the previous
    epoch's members and taking effect at a boundary execution index
    that never moves backwards. *)

type role = Active_cc | Backup_cc | Data_center

val role_name : role -> string

type site = { site_id : int; role : role; members : int list }

type t = {
  epoch : int;
  f : int;
  k : int;
  boundary_exec : int;
  sites : site list;
  signers : int list;
  prev_digest : Cryptosim.Digest.t;
}

val epoch : t -> int
val f : t -> int
val k : t -> int
val boundary_exec : t -> int
val sites : t -> site list
val signers : t -> int list
val prev_digest : t -> Cryptosim.Digest.t

(** All global member ids in site order (defines protocol rank). *)
val members : t -> int list

val n : t -> int

(** [required_n ~f ~k] is the Spire floor [3f + 2k + 1]. *)
val required_n : f:int -> k:int -> int

(** Ordering quorum [2f + k + 1] for this epoch. *)
val quorum_size : t -> int

(** Client confirmation threshold [f + 1] for this epoch. *)
val reply_threshold : t -> int

val site_of : t -> site_id:int -> site option
val is_member : t -> int -> bool

(** [rank_of t r] is [r]'s dense protocol index within the epoch, if a
    member. *)
val rank_of : t -> int -> int option

val member_of_rank : t -> int -> int option

(** Structural well-formedness: sizes, disjointness, exactly one
    active control center, [n >= 3f + 2k + 1]. *)
val validate : t -> (unit, string) result

(** Chain digest over the canonical serialization (includes signers
    and the previous digest). *)
val digest : t -> Cryptosim.Digest.t

(** [verify_succession ~prev ~next] checks the chain link, boundary
    monotonicity, signer membership in [prev], a previous-epoch quorum
    of signers, and [validate next]. *)
val verify_succession : prev:t -> next:t -> (unit, string) result

(** Genesis (epoch 0, boundary 0, no signers). Raises [Invalid_argument]
    if structurally invalid. *)
val genesis : f:int -> k:int -> sites:site list -> t

val pp : Format.formatter -> t -> unit
