(* The membership directory: the locally known certificate chain.

   Every replica (and the test harness) holds one.  [advance] derives
   and installs a successor from a reconfiguration command — used by
   the first replica to cut over at a boundary; [install] admits a
   certificate derived elsewhere after re-verifying succession — used
   by replicas that learn the epoch from a peer.  The chain only ever
   grows; certificates are never reordered or replaced, so the history
   doubles as the audit log the oracle checks. *)

type t = {
  mutable chain : Cert.t list; (* newest first, genesis last *)
}

let create ~genesis =
  (match Cert.validate genesis with
  | Ok () -> ()
  | Error e -> invalid_arg ("Member.Directory.create: " ^ e));
  if Cert.epoch genesis <> 0 then
    invalid_arg "Member.Directory.create: genesis must be epoch 0";
  { chain = [ genesis ] }

let current t = List.hd t.chain
let epoch t = Cert.epoch (current t)

(* Oldest first, i.e. genesis at the head. *)
let history t = List.rev t.chain

let cert_of_epoch t e =
  List.find_opt (fun c -> Cert.epoch c = e) t.chain

let is_member t r = Cert.is_member (current t) r

let install t next =
  let prev = current t in
  if Cert.epoch next <= Cert.epoch prev then
    if
      (* Idempotent re-install of a known cert is fine; a *different*
         cert at a known epoch is a fork. *)
      match cert_of_epoch t (Cert.epoch next) with
      | Some known -> Cryptosim.Digest.equal (Cert.digest known) (Cert.digest next)
      | None -> false
    then Ok ()
    else Error "stale or forked certificate"
  else if Cert.epoch next <> Cert.epoch prev + 1 then
    Error "gap in certificate chain"
  else
    match Cert.verify_succession ~prev ~next with
    | Ok () ->
      t.chain <- next :: t.chain;
      Ok ()
    | Error _ as e -> e

let advance t actions ~signers ~boundary_exec =
  match Reconfig.apply (current t) actions ~signers ~boundary_exec with
  | Error _ as e -> e
  | Ok next -> (
    match install t next with
    | Ok () -> Ok next
    | Error e -> Error e)
