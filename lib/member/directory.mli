(** Locally known certificate chain (grows only, audit-loggable). *)

type t

val create : genesis:Cert.t -> t
val current : t -> Cert.t
val epoch : t -> int

(** Oldest first (genesis at the head). *)
val history : t -> Cert.t list

val cert_of_epoch : t -> int -> Cert.t option
val is_member : t -> int -> bool

(** Verify succession from the current head and append.  Idempotent
    for certs already in the chain; rejects forks and gaps. *)
val install : t -> Cert.t -> (unit, string) result

(** Derive the successor via {!Reconfig.apply}, then {!install} it. *)
val advance :
  t -> Reconfig.t -> signers:int list -> boundary_exec:int ->
  (Cert.t, string) result
