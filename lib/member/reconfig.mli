(** Reconfiguration commands ordered through the BFT stream.

    A command is an atomic list of actions producing the successor
    certificate.  The byte codec is versioned and stable so commands
    can be carried as opaque SCADA payloads and replayed from logs. *)

type action =
  | Set_resilience of { f : int; k : int }
  | Remove_site of int
  | Add_site of { site_id : int; role : Cert.role; members : int list }
  | Promote of int

type t = action list

val encode : t -> string

(** Total parse of [encode]'s output; rejects trailing bytes, unknown
    versions, tags and roles. *)
val decode : string -> (t, string) result

(** [apply prev actions ~signers ~boundary_exec] derives the next
    epoch's certificate, validating both the individual actions and
    the resulting certificate's succession from [prev]. *)
val apply :
  Cert.t -> t -> signers:int list -> boundary_exec:int ->
  (Cert.t, string) result

val pp_action : Format.formatter -> action -> unit
val pp : Format.formatter -> t -> unit
