(** The SCADA master application state machine.

    This is the state machine that Spire replicates: each replica feeds
    it the totally-ordered update stream, and all correct replicas hold
    byte-identical state. It tracks the last reported status of every
    substation, operator command intents, and an event counter, and it
    yields the {e effect} each update produces (e.g. a device command to
    forward to a substation proxy).

    Determinism contract: [apply] is a pure function of the state and
    the operation sequence — no clocks, no randomness — so the state
    digest is comparable across replicas. *)

type t

type effect =
  | No_effect
  | Device_command of { rtu : int; command : Dnp3.app }
      (** forward to the substation proxy, which actuates the RTU *)
  | Read_result of { hmi_id : int; state : Cryptosim.Digest.t }

val create : unit -> t

(** [apply t op] transitions the state and returns the effect. *)
val apply : t -> Op.t -> effect

(** [applied_count t] is the number of operations applied. *)
val applied_count : t -> int

(** [state_digest t] is a running digest over the applied sequence and
    resulting state — equal across replicas iff they applied the same
    sequence. *)
val state_digest : t -> Cryptosim.Digest.t

(** [last_status t ~rtu] is the most recent status report applied for
    [rtu], if any. *)
val last_status : t -> rtu:int -> Rtu.status option

(** [breaker_intent t ~rtu ~breaker] is the operator's last commanded
    state for a breaker, if any command was applied. *)
val breaker_intent : t -> rtu:int -> breaker:int -> Rtu.breaker_state option

(** [known_rtus t] lists RTU ids with at least one applied report,
    ascending. *)
val known_rtus : t -> int list

(** [stale_rtus t ~now_seq ~window] lists RTUs whose latest report
    sequence number lags the given poll sequence horizon by more than
    [window] — the master's view of "substation possibly down". *)
val stale_rtus : t -> now_seq:int -> window:int -> int list

(** [field_event_count t] is the cumulative number of fleet exception
    events confirmed through ordered [Field_report] aggregates. *)
val field_event_count : t -> int

(** [field_write_count t] is the number of ordered fleet register
    writes applied. *)
val field_write_count : t -> int

(** [reply_digest t ~exec_index ~update] is the digest the replicas
    threshold-sign to authenticate their reply for [update]. Binds the
    execution index, the update identity, and the resulting state. *)
val reply_digest : t -> exec_index:int -> update:Bft.Update.t -> Cryptosim.Digest.t

(** {1 State transfer} *)

(** [snapshot_digest t] = [state_digest t] (alias used by recovery). *)
val snapshot_digest : t -> Cryptosim.Digest.t

(** [clone t] deep-copies the state (state transfer to a recovering
    replica). *)
val clone : t -> t
