type t = {
  mutable statuses : (int * Rtu.status) list;  (* assoc rtu -> last status *)
  mutable intents : ((int * int) * Rtu.breaker_state) list;
  mutable applied : int;
  mutable field_events : int;  (* cumulative fleet exception events confirmed *)
  mutable field_writes : int;  (* cumulative fleet register writes confirmed *)
  mutable digest : Cryptosim.Digest.t;
}

type effect =
  | No_effect
  | Device_command of { rtu : int; command : Dnp3.app }
  | Read_result of { hmi_id : int; state : Cryptosim.Digest.t }

let create () =
  {
    statuses = [];
    intents = [];
    applied = 0;
    field_events = 0;
    field_writes = 0;
    digest = Cryptosim.Digest.of_string "scada-master-genesis";
  }

let applied_count t = t.applied
let state_digest t = t.digest

let advance_digest t op =
  t.applied <- t.applied + 1;
  t.digest <-
    Cryptosim.Digest.combine t.digest (Cryptosim.Digest.of_string (Op.encode op))

let apply t op =
  advance_digest t op;
  match op with
  | Op.Status_report s ->
    let rtu = s.Rtu.rtu_id in
    let keep_newer =
      match List.assoc_opt rtu t.statuses with
      | Some prev -> prev.Rtu.seq < s.Rtu.seq
      | None -> true
    in
    if keep_newer then
      t.statuses <- (rtu, s) :: List.remove_assoc rtu t.statuses;
    No_effect
  | Op.Breaker_command { rtu; breaker; desired } ->
    t.intents <-
      ((rtu, breaker), desired) :: List.remove_assoc (rtu, breaker) t.intents;
    let action =
      match desired with Rtu.Open -> Dnp3.Trip | Rtu.Closed -> Dnp3.Close
    in
    Device_command { rtu; command = Dnp3.Operate { point = breaker; action } }
  | Op.Tap_command { rtu; position } ->
    (* Encoded as an operate on a reserved point id carrying the tap. *)
    Device_command
      {
        rtu;
        command =
          Dnp3.Operate
            {
              point = 0x100 + (position + 16);
              action = (if position >= 0 then Dnp3.Close else Dnp3.Trip);
            };
      }
  | Op.Hmi_read { hmi_id } -> Read_result { hmi_id; state = t.digest }
  | Op.Reconfig _ ->
    (* Membership reconfiguration has no field-device effect; the
       deployment layer reacts to its execution.  It still advances the
       state digest (above) so every replica's application state chains
       over the command identically. *)
    No_effect
  | Op.Field_report { events; _ } ->
    (* The aggregate commits to the underlying device reports via its
       checksum, which the digest chain (above) already covers; the
       master only has to tally the confirmed events. *)
    t.field_events <- t.field_events + events;
    No_effect
  | Op.Field_write _ ->
    (* Actuation happens at the concentrator once it sees the
       confirmation; replicas just account the ordered write. *)
    t.field_writes <- t.field_writes + 1;
    No_effect

let last_status t ~rtu = List.assoc_opt rtu t.statuses
let breaker_intent t ~rtu ~breaker = List.assoc_opt (rtu, breaker) t.intents
let known_rtus t = List.sort compare (List.map fst t.statuses)

let stale_rtus t ~now_seq ~window =
  List.filter_map
    (fun (rtu, s) -> if now_seq - s.Rtu.seq > window then Some rtu else None)
    t.statuses
  |> List.sort compare

let reply_digest t ~exec_index ~update =
  Cryptosim.Digest.combine
    (Cryptosim.Digest.of_string ("reply:" ^ string_of_int exec_index))
    (Cryptosim.Digest.combine (Bft.Update.digest update) t.digest)

let snapshot_digest = state_digest

let field_event_count t = t.field_events
let field_write_count t = t.field_writes

let clone t =
  {
    statuses = t.statuses;
    intents = t.intents;
    applied = t.applied;
    field_events = t.field_events;
    field_writes = t.field_writes;
    digest = t.digest;
  }
