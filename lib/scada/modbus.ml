type request =
  | Read_coils of { start : int; count : int }
  | Read_discrete_inputs of { start : int; count : int }
  | Read_holding_registers of { start : int; count : int }
  | Read_input_registers of { start : int; count : int }
  | Write_single_coil of { address : int; value : bool }
  | Write_single_register of { address : int; value : int }
  | Write_multiple_coils of { start : int; values : bool list }
  | Write_multiple_registers of { start : int; values : int list }

type response =
  | Coils of bool list
  | Discrete_inputs of bool list
  | Holding_registers of int list
  | Input_registers of int list
  | Coil_written of { address : int; value : bool }
  | Register_written of { address : int; value : int }
  | Coils_written of { start : int; count : int }
  | Registers_written of { start : int; count : int }
  | Exception_response of { function_code : int; exception_code : int }

type 'a frame = { transaction : int; unit_id : int; body : 'a }

let protocol_id = 0

let check_u16 name v =
  if v < 0 || v > 0xFFFF then invalid_arg (Printf.sprintf "Modbus: %s out of u16 range" name)

(* PDU builders ------------------------------------------------------- *)

let read_request_pdu fc ~start ~count =
  check_u16 "start" start;
  check_u16 "count" count;
  let b = Buffer.create 5 in
  Buffer.add_uint8 b fc;
  Buffer.add_uint16_be b start;
  Buffer.add_uint16_be b count;
  Buffer.contents b

let add_packed_bits b bits =
  let byte_count = (List.length bits + 7) / 8 in
  Buffer.add_uint8 b byte_count;
  let bytes = Array.make byte_count 0 in
  List.iteri
    (fun i bit -> if bit then bytes.(i / 8) <- bytes.(i / 8) lor (1 lsl (i mod 8)))
    bits;
  Array.iter (Buffer.add_uint8 b) bytes

let pdu_of_request = function
  | Read_coils { start; count } -> read_request_pdu 0x01 ~start ~count
  | Read_discrete_inputs { start; count } -> read_request_pdu 0x02 ~start ~count
  | Read_holding_registers { start; count } -> read_request_pdu 0x03 ~start ~count
  | Read_input_registers { start; count } -> read_request_pdu 0x04 ~start ~count
  | Write_multiple_coils { start; values } ->
    check_u16 "start" start;
    (* byte count is a u8, which bounds a write to 0x7B0 coils in real
       Modbus; we enforce the same ceiling *)
    if List.length values > 0x7B0 then
      invalid_arg "Modbus: too many coils in one write";
    let b = Buffer.create (6 + ((List.length values + 7) / 8)) in
    Buffer.add_uint8 b 0x0F;
    Buffer.add_uint16_be b start;
    Buffer.add_uint16_be b (List.length values);
    add_packed_bits b values;
    Buffer.contents b
  | Write_multiple_registers { start; values } ->
    check_u16 "start" start;
    (* byte count is a u8: at most 123 registers per write, as in real
       Modbus *)
    if List.length values > 123 then
      invalid_arg "Modbus: too many registers in one write";
    List.iter (check_u16 "register") values;
    let b = Buffer.create (6 + (2 * List.length values)) in
    Buffer.add_uint8 b 0x10;
    Buffer.add_uint16_be b start;
    Buffer.add_uint16_be b (List.length values);
    Buffer.add_uint8 b (2 * List.length values);
    List.iter (Buffer.add_uint16_be b) values;
    Buffer.contents b
  | Write_single_coil { address; value } ->
    check_u16 "address" address;
    let b = Buffer.create 5 in
    Buffer.add_uint8 b 0x05;
    Buffer.add_uint16_be b address;
    Buffer.add_uint16_be b (if value then 0xFF00 else 0x0000);
    Buffer.contents b
  | Write_single_register { address; value } ->
    check_u16 "address" address;
    check_u16 "value" value;
    let b = Buffer.create 5 in
    Buffer.add_uint8 b 0x06;
    Buffer.add_uint16_be b address;
    Buffer.add_uint16_be b value;
    Buffer.contents b

(* Trailing bit count so the decoder can recover the exact list length
   (Modbus proper relies on the request's count; we make the frame
   self-describing). *)
let bit_response_pdu fc bits =
  let b = Buffer.create (3 + ((List.length bits + 7) / 8)) in
  Buffer.add_uint8 b fc;
  add_packed_bits b bits;
  Buffer.add_uint8 b (List.length bits land 0xFF);
  Buffer.contents b

let register_response_pdu fc regs =
  List.iter (check_u16 "register") regs;
  let b = Buffer.create (2 + (2 * List.length regs)) in
  Buffer.add_uint8 b fc;
  Buffer.add_uint8 b (2 * List.length regs);
  List.iter (Buffer.add_uint16_be b) regs;
  Buffer.contents b

let write_echo_pdu fc ~start ~count =
  check_u16 "start" start;
  check_u16 "count" count;
  let b = Buffer.create 5 in
  Buffer.add_uint8 b fc;
  Buffer.add_uint16_be b start;
  Buffer.add_uint16_be b count;
  Buffer.contents b

let pdu_of_response = function
  | Coils bits -> bit_response_pdu 0x01 bits
  | Discrete_inputs bits -> bit_response_pdu 0x02 bits
  | Holding_registers regs -> register_response_pdu 0x03 regs
  | Input_registers regs -> register_response_pdu 0x04 regs
  | Coils_written { start; count } -> write_echo_pdu 0x0F ~start ~count
  | Registers_written { start; count } -> write_echo_pdu 0x10 ~start ~count
  | Coil_written { address; value } ->
    check_u16 "address" address;
    let b = Buffer.create 5 in
    Buffer.add_uint8 b 0x05;
    Buffer.add_uint16_be b address;
    Buffer.add_uint16_be b (if value then 0xFF00 else 0x0000);
    Buffer.contents b
  | Register_written { address; value } ->
    check_u16 "address" address;
    check_u16 "value" value;
    let b = Buffer.create 5 in
    Buffer.add_uint8 b 0x06;
    Buffer.add_uint16_be b address;
    Buffer.add_uint16_be b value;
    Buffer.contents b
  | Exception_response { function_code; exception_code } ->
    let b = Buffer.create 2 in
    Buffer.add_uint8 b (function_code lor 0x80);
    Buffer.add_uint8 b exception_code;
    Buffer.contents b

let encode_adu frame pdu =
  check_u16 "transaction" frame.transaction;
  let b = Buffer.create (7 + String.length pdu) in
  Buffer.add_uint16_be b frame.transaction;
  Buffer.add_uint16_be b protocol_id;
  Buffer.add_uint16_be b (String.length pdu + 1);
  Buffer.add_uint8 b frame.unit_id;
  Buffer.add_string b pdu;
  Buffer.contents b

let encode_request f = encode_adu f (pdu_of_request f.body)
let encode_response f = encode_adu f (pdu_of_response f.body)

(* Decoding ----------------------------------------------------------- *)

let get_u8 s pos = Char.code s.[pos]
let get_u16 s pos = (get_u8 s pos lsl 8) lor get_u8 s (pos + 1)

let decode_header s =
  if String.length s < 8 then Error "frame too short for MBAP header"
  else begin
    let transaction = get_u16 s 0 in
    let proto = get_u16 s 2 in
    let length = get_u16 s 4 in
    let unit_id = get_u8 s 6 in
    if proto <> protocol_id then Error "bad protocol id"
    else if String.length s <> 6 + length then Error "length field mismatch"
    else Ok (transaction, unit_id, String.sub s 7 (length - 1))
  end

let decode_request s =
  Result.bind (decode_header s) (fun (transaction, unit_id, pdu) ->
      if String.length pdu < 1 then Error "empty PDU"
      else
        let packed_bits ~pos ~count =
          List.init count (fun i ->
              get_u8 pdu (pos + (i / 8)) land (1 lsl (i mod 8)) <> 0)
        in
        let body =
          match get_u8 pdu 0 with
          | 0x01 when String.length pdu = 5 ->
            Ok (Read_coils { start = get_u16 pdu 1; count = get_u16 pdu 3 })
          | 0x02 when String.length pdu = 5 ->
            Ok
              (Read_discrete_inputs
                 { start = get_u16 pdu 1; count = get_u16 pdu 3 })
          | 0x03 when String.length pdu = 5 ->
            Ok
              (Read_holding_registers
                 { start = get_u16 pdu 1; count = get_u16 pdu 3 })
          | 0x04 when String.length pdu = 5 ->
            Ok
              (Read_input_registers
                 { start = get_u16 pdu 1; count = get_u16 pdu 3 })
          | 0x0F when String.length pdu >= 6 ->
            let count = get_u16 pdu 3 in
            let byte_count = get_u8 pdu 5 in
            if byte_count <> (count + 7) / 8 then Error "coil write byte count"
            else if String.length pdu <> 6 + byte_count then
              Error "coil write length"
            else
              Ok
                (Write_multiple_coils
                   { start = get_u16 pdu 1; values = packed_bits ~pos:6 ~count })
          | 0x10 when String.length pdu >= 6 ->
            let count = get_u16 pdu 3 in
            let byte_count = get_u8 pdu 5 in
            if byte_count <> 2 * count then Error "register write byte count"
            else if String.length pdu <> 6 + byte_count then
              Error "register write length"
            else
              Ok
                (Write_multiple_registers
                   {
                     start = get_u16 pdu 1;
                     values = List.init count (fun i -> get_u16 pdu (6 + (2 * i)));
                   })
          | 0x05 when String.length pdu = 5 ->
            let raw = get_u16 pdu 3 in
            if raw <> 0xFF00 && raw <> 0x0000 then Error "bad coil value"
            else
              Ok
                (Write_single_coil
                   { address = get_u16 pdu 1; value = raw = 0xFF00 })
          | 0x06 when String.length pdu = 5 ->
            Ok
              (Write_single_register
                 { address = get_u16 pdu 1; value = get_u16 pdu 3 })
          | code -> Error (Printf.sprintf "unsupported function 0x%02x" code)
        in
        Result.map (fun body -> { transaction; unit_id; body }) body)

let decode_response s =
  Result.bind (decode_header s) (fun (transaction, unit_id, pdu) ->
      if String.length pdu < 2 then Error "PDU too short"
      else
        let bits_body mk =
          let byte_count = get_u8 pdu 1 in
          if String.length pdu <> 3 + byte_count then Error "coil length"
          else begin
            let bit_count_field = get_u8 pdu (2 + byte_count) in
            let max_bits = 8 * byte_count in
            let bit_count =
              if bit_count_field = 0 && max_bits > 0 then max_bits
              else if
                bit_count_field > max_bits || max_bits - bit_count_field >= 8
              then -1
              else bit_count_field
            in
            if bit_count < 0 then Error "coil bit count"
            else
              Ok
                (mk
                   (List.init bit_count (fun i ->
                        get_u8 pdu (2 + (i / 8)) land (1 lsl (i mod 8)) <> 0)))
          end
        in
        let registers_body mk =
          let byte_count = get_u8 pdu 1 in
          if byte_count mod 2 <> 0 || String.length pdu <> 2 + byte_count then
            Error "register length"
          else
            Ok
              (mk (List.init (byte_count / 2) (fun i -> get_u16 pdu (2 + (2 * i)))))
        in
        let body =
          match get_u8 pdu 0 with
          | 0x01 -> bits_body (fun bits -> Coils bits)
          | 0x02 -> bits_body (fun bits -> Discrete_inputs bits)
          | 0x03 -> registers_body (fun regs -> Holding_registers regs)
          | 0x04 -> registers_body (fun regs -> Input_registers regs)
          | 0x0F when String.length pdu = 5 ->
            Ok (Coils_written { start = get_u16 pdu 1; count = get_u16 pdu 3 })
          | 0x10 when String.length pdu = 5 ->
            Ok
              (Registers_written { start = get_u16 pdu 1; count = get_u16 pdu 3 })
          | 0x05 when String.length pdu = 5 ->
            Ok
              (Coil_written
                 { address = get_u16 pdu 1; value = get_u16 pdu 3 = 0xFF00 })
          | 0x06 when String.length pdu = 5 ->
            Ok
              (Register_written { address = get_u16 pdu 1; value = get_u16 pdu 3 })
          | code when code land 0x80 <> 0 && String.length pdu = 2 ->
            Ok
              (Exception_response
                 { function_code = code land 0x7F; exception_code = get_u8 pdu 1 })
          | code -> Error (Printf.sprintf "unsupported function 0x%02x" code)
        in
        Result.map (fun body -> { transaction; unit_id; body }) body)

let pp_request ppf = function
  | Read_coils { start; count } -> Format.fprintf ppf "ReadCoils(%d,%d)" start count
  | Read_discrete_inputs { start; count } ->
    Format.fprintf ppf "ReadDiscretes(%d,%d)" start count
  | Read_holding_registers { start; count } ->
    Format.fprintf ppf "ReadHolding(%d,%d)" start count
  | Read_input_registers { start; count } ->
    Format.fprintf ppf "ReadInput(%d,%d)" start count
  | Write_single_coil { address; value } ->
    Format.fprintf ppf "WriteCoil(%d,%b)" address value
  | Write_single_register { address; value } ->
    Format.fprintf ppf "WriteReg(%d,%d)" address value
  | Write_multiple_coils { start; values } ->
    Format.fprintf ppf "WriteCoils(%d,%d bits)" start (List.length values)
  | Write_multiple_registers { start; values } ->
    Format.fprintf ppf "WriteRegs(%d,%d)" start (List.length values)

let pp_response ppf = function
  | Coils bits -> Format.fprintf ppf "Coils(%d bits)" (List.length bits)
  | Discrete_inputs bits ->
    Format.fprintf ppf "Discretes(%d bits)" (List.length bits)
  | Holding_registers regs -> Format.fprintf ppf "Registers(%d)" (List.length regs)
  | Input_registers regs ->
    Format.fprintf ppf "InputRegs(%d)" (List.length regs)
  | Coil_written { address; value } ->
    Format.fprintf ppf "CoilWritten(%d,%b)" address value
  | Register_written { address; value } ->
    Format.fprintf ppf "RegWritten(%d,%d)" address value
  | Coils_written { start; count } ->
    Format.fprintf ppf "CoilsWritten(%d,%d)" start count
  | Registers_written { start; count } ->
    Format.fprintf ppf "RegsWritten(%d,%d)" start count
  | Exception_response { function_code; exception_code } ->
    Format.fprintf ppf "Exception(0x%02x,%d)" function_code exception_code
