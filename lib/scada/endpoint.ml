type pending = {
  update : Bft.Update.t;
  submitted_us : int;
  mutable attempt : int;
  mutable last_sent_us : int;
  (* Shares received so far, grouped by claimed digest. *)
  shares :
    ( Cryptosim.Digest.t,
      (Bft.Types.replica, Cryptosim.Threshold.share) Hashtbl.t * Reply.body )
    Hashtbl.t;
}

type t = {
  engine : Sim.Engine.t;
  client_id : Bft.Types.client;
  (* Threshold groups this endpoint accepts combined signatures from,
     newest epoch first.  Across a membership cutover, boundary-batch
     replies are still signed by the old epoch's group while new-epoch
     replies use the new one, so the endpoint keeps the last two.
     [Threshold.combine] filters shares from foreign groups via share
     verification, so trying each group is sound. *)
  mutable groups : Cryptosim.Threshold.group list;
  resubmit_timeout_us : int;
  submit : attempt:int -> Bft.Update.t -> unit;
  (* Batch path: [None] (or a singleton policy) means every send_op
     ships immediately through [submit] — the legacy wire shape. *)
  submit_batch : (Bft.Update.t list -> unit) option;
  mutable batch : Bft.Batch.policy;
      (* live-settable by the runtime tuning plane; see
         [set_batch_policy] *)
  acc : Bft.Update.t Bft.Batch.acc;
  pending : (int, pending) Hashtbl.t; (* client_seq -> pending *)
  mutable next_seq : int;
  mutable floor : int; (* lowest possibly-pending client_seq *)
  mutable completed : int;
  mutable resubmits : int;
  mutable on_complete : Bft.Update.t -> latency_us:int -> unit;
  mutable running : bool;
  telemetry : Telemetry.Sink.t;
  shard : int; (* engine heap owning this endpoint's timers *)
}

let create ?(telemetry = Telemetry.Sink.null) ?(batch = Bft.Batch.singleton)
    ?submit_batch ?(shard = 0) ~engine ~client_id ~group ~resubmit_timeout_us
    ~submit () =
  {
    engine;
    client_id;
    groups = [ group ];
    resubmit_timeout_us;
    submit;
    submit_batch;
    batch;
    acc = Bft.Batch.acc batch;
    pending = Hashtbl.create 97;
    next_seq = 1;
    floor = 1;
    completed = 0;
    resubmits = 0;
    on_complete = (fun _ ~latency_us:_ -> ());
    running = false;
    telemetry;
    shard;
  }

let client_id t = t.client_id

(* Adopt a new epoch's threshold group; the previous one is retained
   (and only it) so in-flight old-epoch replies still combine. *)
let push_group t g =
  if not (List.memq g t.groups) then
    t.groups <- g :: (match t.groups with old :: _ -> [ old ] | [] -> [])
let pending_count t = Hashtbl.length t.pending
let completed_count t = t.completed
let resubmit_count t = t.resubmits
let set_on_complete t f = t.on_complete <- f

let flush_batch t =
  if not (Bft.Batch.is_empty t.acc) then begin
    let updates = Bft.Batch.take_all t.acc in
    let now = Sim.Engine.now t.engine in
    if Telemetry.Sink.enabled t.telemetry then
      List.iter
        (fun (u : Bft.Update.t) ->
          Telemetry.Sink.update_batched t.telemetry
            ~trace:
              (Telemetry.Span.trace_id ~client:t.client_id
                 ~seq:u.Bft.Update.client_seq)
            ~now)
        updates;
    match t.submit_batch with
    | Some f -> f updates
    | None ->
      List.iter (fun u -> t.submit ~attempt:0 u) updates
  end

let flush_batch_due t =
  match Bft.Batch.deadline_us t.acc with
  | Some d when d <= Sim.Engine.now t.engine -> flush_batch t
  | Some _ | None -> ()

(* Hot-swap the client-side aggregation policy. Drains the buffered
   generation if the swap made it due; the stale generation timer
   re-checks the deadline, so nothing flushes twice. *)
let set_batch_policy t p =
  t.batch <- Bft.Batch.validate p;
  Bft.Batch.set_policy t.acc p;
  if Bft.Batch.full t.acc then flush_batch t else flush_batch_due t

let batch_policy t = t.batch

let send_op t op =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let now = Sim.Engine.now t.engine in
  let update = Op.to_update op ~client:t.client_id ~client_seq:seq ~submitted_us:now in
  Hashtbl.replace t.pending seq
    {
      update;
      submitted_us = now;
      attempt = 0;
      last_sent_us = now;
      shares = Hashtbl.create 7;
    };
  if Telemetry.Sink.enabled t.telemetry then
    Telemetry.Sink.update_submitted t.telemetry
      ~trace:(Telemetry.Span.trace_id ~client:t.client_id ~seq)
      ~now;
  if Bft.Batch.is_singleton t.batch then t.submit ~attempt:0 update
  else begin
    Bft.Batch.push t.acc ~now update;
    if Bft.Batch.full t.acc then flush_batch t
    else if Bft.Batch.length t.acc = 1 then
      ignore
        (Sim.Engine.schedule ~shard:t.shard t.engine
           ~delay_us:t.batch.Bft.Batch.max_delay_us (fun () ->
             flush_batch_due t)
          : Sim.Engine.timer)
  end;
  update

let handle_reply t (reply : Reply.t) =
  let client, seq = reply.Reply.update_key in
  if client <> t.client_id then None
  else
    match Hashtbl.find_opt t.pending seq with
    | None -> None (* unknown or already confirmed *)
    | Some p ->
      let by_replica, body =
        match Hashtbl.find_opt p.shares reply.Reply.digest with
        | Some entry -> entry
        | None ->
          let entry = (Hashtbl.create 7, reply.Reply.body) in
          Hashtbl.replace p.shares reply.Reply.digest entry;
          entry
      in
      Hashtbl.replace by_replica reply.Reply.replica reply.Reply.share;
      let shares = Hashtbl.fold (fun _ s acc -> s :: acc) by_replica [] in
      let combined_opt =
        List.find_map
          (fun g ->
            match
              Cryptosim.Threshold.combine g ~digest:reply.Reply.digest shares
            with
            | Some c when Cryptosim.Threshold.verify g ~digest:reply.Reply.digest c
              ->
              Some c
            | Some _ | None -> None)
          t.groups
      in
      (match combined_opt with
      | None -> None
      | Some _ ->
        Hashtbl.remove t.pending seq;
        t.completed <- t.completed + 1;
        let now = Sim.Engine.now t.engine in
        if Telemetry.Sink.enabled t.telemetry then
          Telemetry.Sink.update_confirmed t.telemetry
            ~trace:(Telemetry.Span.trace_id ~client:t.client_id ~seq)
            ~now;
        let latency_us = now - p.submitted_us in
        t.on_complete p.update ~latency_us;
        Some body)

(* Retransmission policy: execution is per-client FIFO, so only the
   head of the pending line can unblock progress — retransmitting a
   deep backlog is pure overhead. The watchdog therefore retransmits at
   most [resubmit_window] of the lowest-sequence pendings, each under
   exponential backoff. [floor] tracks the lowest possibly-pending
   sequence so the scan is O(window) amortised. *)
let resubmit_window = 8

let watchdog t =
  let now = Sim.Engine.now t.engine in
  while t.floor < t.next_seq && not (Hashtbl.mem t.pending t.floor) do
    t.floor <- t.floor + 1
  done;
  let examined = ref 0 in
  let seq = ref t.floor in
  while !examined < resubmit_window && !seq < t.next_seq do
    (match Hashtbl.find_opt t.pending !seq with
    | None -> ()
    | Some p ->
      incr examined;
      (* Exponential backoff caps retransmission load when the system
         is saturated rather than partitioned. *)
      let backoff = t.resubmit_timeout_us * (1 lsl min p.attempt 4) in
      if now - p.last_sent_us > backoff then begin
        p.attempt <- p.attempt + 1;
        p.last_sent_us <- now;
        t.resubmits <- t.resubmits + 1;
        t.submit ~attempt:p.attempt p.update
      end);
    incr seq
  done

let start t =
  if not t.running then begin
    t.running <- true;
    let interval = max 10_000 (t.resubmit_timeout_us / 4) in
    ignore
      (Sim.Engine.periodic ~shard:t.shard t.engine ~interval_us:interval
         (fun () -> watchdog t)
        : Sim.Engine.timer)
  end
