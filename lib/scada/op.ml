type t =
  | Status_report of Rtu.status
  | Breaker_command of { rtu : int; breaker : int; desired : Rtu.breaker_state }
  | Tap_command of { rtu : int; position : int }
  | Hmi_read of { hmi_id : int }
  | Reconfig of { payload : string }
      (* opaque membership-reconfiguration command (Member.Reconfig
         bytes) ordered through the stream like any other operation;
         the SCADA layer never interprets it *)
  | Field_report of {
      concentrator : int;
      round : int;
      devices : int;
      events : int;
      checksum : int;
    }
      (* hierarchical aggregate of one concentrator scan round: how
         many devices reported, how many deadband/exception events they
         carried, and a checksum chained over the per-device report
         frames — the fleet's confirmed-read path *)
  | Field_write of { concentrator : int; device : int; address : int; value : int }
      (* a holding-register write ordered through the stream; the
         concentrator actuates the device only after the write is
         confirmed *)

let add_int_list b l =
  Buffer.add_uint16_be b (List.length l);
  List.iter (fun v -> Buffer.add_int32_be b (Int32.of_int v)) l

let encode = function
  | Status_report s ->
    let b = Buffer.create 64 in
    Buffer.add_uint8 b 0x01;
    Buffer.add_uint16_be b s.Rtu.rtu_id;
    Buffer.add_int32_be b (Int32.of_int s.Rtu.seq);
    Buffer.add_uint8 b (Array.length s.Rtu.breakers);
    Array.iter
      (fun st -> Buffer.add_uint8 b (match st with Rtu.Closed -> 1 | Rtu.Open -> 0))
      s.Rtu.breakers;
    add_int_list b (Array.to_list s.Rtu.voltages_mv);
    add_int_list b (Array.to_list s.Rtu.currents_ma);
    Buffer.add_int32_be b (Int32.of_int s.Rtu.frequency_mhz);
    Buffer.add_uint8 b (s.Rtu.tap_position + 16);
    Buffer.contents b
  | Breaker_command { rtu; breaker; desired } ->
    let b = Buffer.create 8 in
    Buffer.add_uint8 b 0x02;
    Buffer.add_uint16_be b rtu;
    Buffer.add_uint8 b breaker;
    Buffer.add_uint8 b (match desired with Rtu.Closed -> 1 | Rtu.Open -> 0);
    Buffer.contents b
  | Tap_command { rtu; position } ->
    let b = Buffer.create 8 in
    Buffer.add_uint8 b 0x03;
    Buffer.add_uint16_be b rtu;
    Buffer.add_uint8 b (position + 16);
    Buffer.contents b
  | Hmi_read { hmi_id } ->
    let b = Buffer.create 4 in
    Buffer.add_uint8 b 0x04;
    Buffer.add_uint16_be b hmi_id;
    Buffer.contents b
  | Reconfig { payload } ->
    let b = Buffer.create (1 + String.length payload) in
    Buffer.add_uint8 b 0x05;
    Buffer.add_string b payload;
    Buffer.contents b
  | Field_report { concentrator; round; devices; events; checksum } ->
    let b = Buffer.create 19 in
    Buffer.add_uint8 b 0x06;
    Buffer.add_uint16_be b concentrator;
    Buffer.add_int32_be b (Int32.of_int round);
    Buffer.add_int32_be b (Int32.of_int devices);
    Buffer.add_int32_be b (Int32.of_int events);
    Buffer.add_int32_be b (Int32.of_int checksum);
    Buffer.contents b
  | Field_write { concentrator; device; address; value } ->
    let b = Buffer.create 13 in
    Buffer.add_uint8 b 0x07;
    Buffer.add_uint16_be b concentrator;
    Buffer.add_int32_be b (Int32.of_int device);
    Buffer.add_uint16_be b address;
    Buffer.add_int32_be b (Int32.of_int value);
    Buffer.contents b

let get_u8 s pos = Char.code s.[pos]
let get_u16 s pos = (get_u8 s pos lsl 8) lor get_u8 s (pos + 1)

let get_i32 s pos =
  Int32.to_int
    (Int32.logor
       (Int32.shift_left (Int32.of_int (get_u16 s pos)) 16)
       (Int32.of_int (get_u16 s (pos + 2))))

let decode s =
  try
    if String.length s < 1 then Error "empty operation"
    else
      match get_u8 s 0 with
      | 0x01 ->
        let rtu_id = get_u16 s 1 in
        let seq = get_i32 s 3 in
        let nb = get_u8 s 7 in
        let breakers =
          Array.init nb (fun i ->
              if get_u8 s (8 + i) = 1 then Rtu.Closed else Rtu.Open)
        in
        let pos = 8 + nb in
        let nv = get_u16 s pos in
        let voltages = Array.init nv (fun i -> get_i32 s (pos + 2 + (4 * i))) in
        let pos = pos + 2 + (4 * nv) in
        let nc = get_u16 s pos in
        let currents = Array.init nc (fun i -> get_i32 s (pos + 2 + (4 * i))) in
        let pos = pos + 2 + (4 * nc) in
        let frequency = get_i32 s pos in
        let tap = get_u8 s (pos + 4) - 16 in
        if String.length s <> pos + 5 then Error "status length mismatch"
        else
          Ok
            (Status_report
               {
                 Rtu.rtu_id;
                 seq;
                 breakers;
                 voltages_mv = voltages;
                 currents_ma = currents;
                 frequency_mhz = frequency;
                 tap_position = tap;
               })
      | 0x02 when String.length s = 5 ->
        Ok
          (Breaker_command
             {
               rtu = get_u16 s 1;
               breaker = get_u8 s 3;
               desired = (if get_u8 s 4 = 1 then Rtu.Closed else Rtu.Open);
             })
      | 0x03 when String.length s = 4 ->
        Ok (Tap_command { rtu = get_u16 s 1; position = get_u8 s 3 - 16 })
      | 0x04 when String.length s = 3 -> Ok (Hmi_read { hmi_id = get_u16 s 1 })
      | 0x05 ->
        Ok (Reconfig { payload = String.sub s 1 (String.length s - 1) })
      | 0x06 when String.length s = 19 ->
        Ok
          (Field_report
             {
               concentrator = get_u16 s 1;
               round = get_i32 s 3;
               devices = get_i32 s 7;
               events = get_i32 s 11;
               checksum = get_i32 s 15;
             })
      | 0x07 when String.length s = 13 ->
        Ok
          (Field_write
             {
               concentrator = get_u16 s 1;
               device = get_i32 s 3;
               address = get_u16 s 7;
               value = get_i32 s 9;
             })
      | tag -> Error (Printf.sprintf "unknown op tag 0x%02x" tag)
  with Invalid_argument _ -> Error "truncated operation"

let to_update op ~client ~client_seq ~submitted_us =
  Bft.Update.create ~client ~client_seq ~operation:(encode op) ~submitted_us

let of_update u = decode u.Bft.Update.operation

let pp ppf = function
  | Status_report s -> Format.fprintf ppf "Status(%a)" Rtu.pp_status s
  | Breaker_command { rtu; breaker; desired } ->
    Format.fprintf ppf "BreakerCmd(rtu%d,b%d,%s)" rtu breaker
      (match desired with Rtu.Open -> "open" | Rtu.Closed -> "close")
  | Tap_command { rtu; position } -> Format.fprintf ppf "TapCmd(rtu%d,%d)" rtu position
  | Hmi_read { hmi_id } -> Format.fprintf ppf "HmiRead(%d)" hmi_id
  | Reconfig { payload } ->
    Format.fprintf ppf "Reconfig(%d B)" (String.length payload)
  | Field_report { concentrator; round; devices; events; checksum } ->
    Format.fprintf ppf "FieldReport(c%d,r%d,%dd,%de,%08x)" concentrator round
      devices events checksum
  | Field_write { concentrator; device; address; value } ->
    Format.fprintf ppf "FieldWrite(c%d,d%d,@%d=%d)" concentrator device address
      value
