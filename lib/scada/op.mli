(** SCADA operations — the application payloads ordered by the
    replication engine.

    A SCADA update is either a substation's status report (the polling
    path), a supervisory command from an HMI (the control path), or an
    ordered read. Operations are serialised into the opaque
    [Bft.Update.operation] string with a compact binary encoding; both
    directions are exercised by round-trip property tests. *)

type t =
  | Status_report of Rtu.status
  | Breaker_command of { rtu : int; breaker : int; desired : Rtu.breaker_state }
  | Tap_command of { rtu : int; position : int }
  | Hmi_read of { hmi_id : int }
  | Reconfig of { payload : string }
      (** opaque membership-reconfiguration command bytes
          ([Member.Reconfig.encode]) ordered through the stream; the
          SCADA layer carries but never interprets them *)
  | Field_report of {
      concentrator : int;
      round : int;
      devices : int;
      events : int;
      checksum : int;
    }
      (** hierarchical aggregate of one concentrator scan round over
          its device fleet (devices reporting, exception events seen, a
          checksum chained over the per-device report frames) — the
          fleet's confirmed-read path *)
  | Field_write of { concentrator : int; device : int; address : int; value : int }
      (** ordered holding-register write; the concentrator actuates the
          device only once the write is confirmed *)

val encode : t -> string
val decode : string -> (t, string) result

(** [to_update op ~client ~client_seq ~submitted_us] wraps an encoded
    operation into a replication-layer update. *)
val to_update :
  t -> client:int -> client_seq:int -> submitted_us:int -> Bft.Update.t

(** [of_update u] decodes the operation carried by [u]. *)
val of_update : Bft.Update.t -> (t, string) result

val pp : Format.formatter -> t -> unit
