type field_protocol = [ `Dnp3 | `Modbus ]

type t = {
  engine : Sim.Engine.t;
  rtu : Rtu.t;
  endpoint : Endpoint.t;
  group : Cryptosim.Threshold.group;
  protocol : field_protocol;
  poll_interval_us : int;
  mutable polls_sent : int;
  mutable commands_applied : int;
  mutable poll_timer : Sim.Engine.timer option;
  mutable running : bool;
  (* Device commands are confirmed independently of the endpoint's own
     pending updates: they carry the ISSUING client's update key (an
     HMI), not ours. *)
  command_shares :
    ( (Bft.Types.client * int) * Cryptosim.Digest.t,
      (Bft.Types.replica, Cryptosim.Threshold.share) Hashtbl.t )
    Hashtbl.t;
  actuated : (Bft.Types.client * int, unit) Hashtbl.t;
  (* Modbus transaction counter. Per-proxy, not module-level: a
     toplevel ref would be mutable state shared by every system
     instance in the process — racy across domains in a parallel
     sweep and an ordering leak between otherwise independent runs. *)
  mutable next_txn : int;
  shard : int; (* engine heap owning this proxy's timers *)
}

let create ?(field_protocol = `Dnp3) ?telemetry ?batch ?submit_batch ?(shard = 0)
    ~engine ~rtu ~client_id ~poll_interval_us ~group ~resubmit_timeout_us
    ~submit () =
  {
    engine;
    rtu;
    endpoint =
      Endpoint.create ?telemetry ?batch ?submit_batch ~shard ~engine ~client_id
        ~group ~resubmit_timeout_us ~submit ();
    group;
    protocol = field_protocol;
    poll_interval_us;
    polls_sent = 0;
    commands_applied = 0;
    poll_timer = None;
    running = false;
    command_shares = Hashtbl.create 17;
    actuated = Hashtbl.create 17;
    next_txn = 0;
    shard;
  }

let endpoint t = t.endpoint
let field_protocol t = t.protocol
let rtu t = t.rtu
let polls_sent t = t.polls_sent
let commands_applied t = t.commands_applied

(* The device side of a DNP3 exchange: answer a poll from live RTU
   state. Analog layout: [seq; frequency; tap; voltages...; currents...]. *)
let device_respond rtu (app : Dnp3.app) : Dnp3.app =
  match app with
  | Dnp3.Poll_request ->
    let s = Rtu.read_status rtu in
    Dnp3.Poll_response
      {
        binary_inputs =
          Array.to_list
            (Array.map (fun b -> b = Rtu.Closed) s.Rtu.breakers);
        analog_inputs =
          (s.Rtu.seq :: s.Rtu.frequency_mhz :: s.Rtu.tap_position
           :: Array.to_list s.Rtu.voltages_mv)
          @ Array.to_list s.Rtu.currents_ma;
      }
  | Dnp3.Operate { point; action } when point < Rtu.breaker_count rtu ->
    Rtu.operate_breaker rtu ~index:point
      ~desired:(match action with Dnp3.Trip -> Rtu.Open | Dnp3.Close -> Rtu.Closed);
    Dnp3.Operate_ack { point; success = true }
  | Dnp3.Operate { point; action = _ } when point >= 0x100 ->
    Rtu.set_tap rtu ~position:(point - 0x100 - 16);
    Dnp3.Operate_ack { point; success = true }
  | Dnp3.Operate { point; _ } -> Dnp3.Operate_ack { point; success = false }
  | Dnp3.Poll_response _ | Dnp3.Operate_ack _ ->
    Dnp3.Operate_ack { point = 0; success = false }

(* Full wire round-trip to the device. *)
let exchange t (app : Dnp3.app) : (Dnp3.app, string) result =
  let request = Dnp3.encode { Dnp3.dest = Rtu.id t.rtu; src = 0xF0; app } in
  match Dnp3.decode request with
  | Error e -> Error ("request corrupted: " ^ e)
  | Ok decoded -> (
    let response_app = device_respond t.rtu decoded.Dnp3.app in
    let response =
      Dnp3.encode { Dnp3.dest = 0xF0; src = Rtu.id t.rtu; app = response_app }
    in
    match Dnp3.decode response with
    | Error e -> Error ("response corrupted: " ^ e)
    | Ok f -> Ok f.Dnp3.app)

let status_of_poll t (app : Dnp3.app) : Rtu.status option =
  match app with
  | Dnp3.Poll_response { binary_inputs; analog_inputs } -> (
    let feeders = Rtu.feeder_count t.rtu in
    match analog_inputs with
    | seq :: frequency :: tap :: rest when List.length rest = 2 * feeders ->
      let voltages = Array.of_list (List.filteri (fun i _ -> i < feeders) rest) in
      let currents = Array.of_list (List.filteri (fun i _ -> i >= feeders) rest) in
      Some
        {
          Rtu.rtu_id = Rtu.id t.rtu;
          seq;
          breakers =
            Array.of_list
              (List.map (fun b -> if b then Rtu.Closed else Rtu.Open) binary_inputs);
          voltages_mv = voltages;
          currents_ma = currents;
          frequency_mhz = frequency;
          tap_position = tap;
        }
    | _ -> None)
  | Dnp3.Poll_request | Dnp3.Operate _ | Dnp3.Operate_ack _ -> None

(* --- Modbus polling: coils carry breaker states; holding registers
   carry a 32-bit big-endian register map:
   [seq; frequency; voltages...; currents...] as register PAIRS, then
   one register for the tap position (offset +16). --- *)

let registers_of_i32 v =
  let v = v land 0xFFFFFFFF in
  [ (v lsr 16) land 0xFFFF; v land 0xFFFF ]

let i32_of_registers hi lo = (hi lsl 16) lor lo

let modbus_register_map (s : Rtu.status) =
  List.concat_map registers_of_i32
    ((s.Rtu.seq :: s.Rtu.frequency_mhz :: Array.to_list s.Rtu.voltages_mv)
    @ Array.to_list s.Rtu.currents_ma)
  @ [ s.Rtu.tap_position + 16 ]

(* The device side of a Modbus exchange. *)
let device_respond_modbus rtu (req : Modbus.request) : Modbus.response =
  match req with
  | Modbus.Read_coils { start; count } ->
    let s = Rtu.read_status rtu in
    let bits =
      List.init count (fun i ->
          let idx = start + i in
          idx < Array.length s.Rtu.breakers && s.Rtu.breakers.(idx) = Rtu.Closed)
    in
    Modbus.Coils bits
  | Modbus.Read_holding_registers { start; count } ->
    let regs = modbus_register_map (Rtu.read_status rtu) in
    Modbus.Holding_registers
      (List.init count (fun i ->
           match List.nth_opt regs (start + i) with Some r -> r | None -> 0))
  | Modbus.Write_single_coil { address; value } ->
    if address < Rtu.breaker_count rtu then begin
      Rtu.operate_breaker rtu ~index:address
        ~desired:(if value then Rtu.Closed else Rtu.Open);
      Modbus.Coil_written { address; value }
    end
    else Modbus.Exception_response { function_code = 0x05; exception_code = 2 }
  | Modbus.Write_single_register { address; value } ->
    if address = 0x100 then begin
      Rtu.set_tap rtu ~position:(value - 16);
      Modbus.Register_written { address; value }
    end
    else Modbus.Exception_response { function_code = 0x06; exception_code = 2 }
  | Modbus.Read_discrete_inputs _ | Modbus.Read_input_registers _
  | Modbus.Write_multiple_coils _ | Modbus.Write_multiple_registers _ ->
    (* The RTU proxy map only spans coils and holding registers; the
       fleet's register-mapped devices (lib/field) serve the rest. *)
    let function_code =
      match req with
      | Modbus.Read_discrete_inputs _ -> 0x02
      | Modbus.Read_input_registers _ -> 0x04
      | Modbus.Write_multiple_coils _ -> 0x0F
      | _ -> 0x10
    in
    Modbus.Exception_response { function_code; exception_code = 1 }

let modbus_exchange t (req : Modbus.request) : (Modbus.response, string) result =
  t.next_txn <- t.next_txn + 1;
  let frame = { Modbus.transaction = t.next_txn land 0xFFFF; unit_id = Rtu.id t.rtu land 0xFF; body = req } in
  match Modbus.decode_request (Modbus.encode_request frame) with
  | Error e -> Error ("request corrupted: " ^ e)
  | Ok decoded -> (
    let response = device_respond_modbus t.rtu decoded.Modbus.body in
    let rframe = { Modbus.transaction = decoded.Modbus.transaction; unit_id = decoded.Modbus.unit_id; body = response } in
    match Modbus.decode_response (Modbus.encode_response rframe) with
    | Error e -> Error ("response corrupted: " ^ e)
    | Ok r -> Ok r.Modbus.body)

let modbus_poll_status t : Rtu.status option =
  let breakers = Rtu.breaker_count t.rtu in
  let feeders = Rtu.feeder_count t.rtu in
  let reg_count = (2 * (2 + (2 * feeders))) + 1 in
  match
    ( modbus_exchange t (Modbus.Read_coils { start = 0; count = breakers }),
      modbus_exchange t
        (Modbus.Read_holding_registers { start = 0; count = reg_count }) )
  with
  | Ok (Modbus.Coils bits), Ok (Modbus.Holding_registers regs)
    when List.length regs = reg_count -> (
    let arr = Array.of_list regs in
    let i32 k = i32_of_registers arr.((2 * k)) arr.((2 * k) + 1) in
    (* The two exchanges each sampled the device; use the second
       read's sequence number. *)
    match List.length bits = breakers with
    | false -> None
    | true ->
      Some
        {
          Rtu.rtu_id = Rtu.id t.rtu;
          seq = i32 0;
          breakers =
            Array.of_list
              (List.map (fun b -> if b then Rtu.Closed else Rtu.Open) bits);
          voltages_mv = Array.init feeders (fun i -> i32 (2 + i));
          currents_ma = Array.init feeders (fun i -> i32 (2 + feeders + i));
          frequency_mhz = i32 1;
          tap_position = arr.(reg_count - 1) - 16;
        })
  | _ -> None

let poll t =
  if t.running then begin
    Rtu.tick t.rtu;
    let status =
      match t.protocol with
      | `Dnp3 -> (
        match exchange t Dnp3.Poll_request with
        | Error _ -> None (* corrupted local exchange: next poll retries *)
        | Ok response -> status_of_poll t response)
      | `Modbus -> modbus_poll_status t
    in
    match status with
    | None -> ()
    | Some status ->
      t.polls_sent <- t.polls_sent + 1;
      ignore (Endpoint.send_op t.endpoint (Op.Status_report status) : Bft.Update.t)
  end

let start t =
  if not t.running then begin
    t.running <- true;
    Endpoint.start t.endpoint;
    t.poll_timer <-
      Some
        (Sim.Engine.periodic ~shard:t.shard t.engine
           ~interval_us:t.poll_interval_us (fun () -> poll t))
  end

let stop t =
  t.running <- false;
  Option.iter Sim.Engine.cancel t.poll_timer;
  t.poll_timer <- None

(* Actuate a master command. Commands arrive as DNP3 frames (the
   replicated master speaks DNP3 for controls); a Modbus proxy acts as
   a protocol gateway and reissues them as Modbus writes. *)
let actuate t frame =
  match Dnp3.decode frame with
  | Error _ -> ()
  | Ok f -> (
    match t.protocol with
    | `Dnp3 -> (
      match device_respond t.rtu f.Dnp3.app with
      | Dnp3.Operate_ack { success = true; _ } ->
        t.commands_applied <- t.commands_applied + 1
      | Dnp3.Operate_ack _ | Dnp3.Poll_request | Dnp3.Poll_response _
      | Dnp3.Operate _ -> ())
    | `Modbus -> (
      match f.Dnp3.app with
      | Dnp3.Operate { point; action } when point < Rtu.breaker_count t.rtu -> (
        match
          modbus_exchange t
            (Modbus.Write_single_coil
               { address = point; value = action = Dnp3.Close })
        with
        | Ok (Modbus.Coil_written _) ->
          t.commands_applied <- t.commands_applied + 1
        | Ok _ | Error _ -> ())
      | Dnp3.Operate { point; _ } when point >= 0x100 -> (
        match
          modbus_exchange t
            (Modbus.Write_single_register
               { address = 0x100; value = point - 0x100 })
        with
        | Ok (Modbus.Register_written _) ->
          t.commands_applied <- t.commands_applied + 1
        | Ok _ | Error _ -> ())
      | Dnp3.Operate _ | Dnp3.Poll_request | Dnp3.Poll_response _
      | Dnp3.Operate_ack _ -> ()))

let handle_command_share t (reply : Reply.t) ~frame =
  let key = (reply.Reply.update_key, reply.Reply.digest) in
  if not (Hashtbl.mem t.actuated reply.Reply.update_key) then begin
    let shares =
      match Hashtbl.find_opt t.command_shares key with
      | Some s -> s
      | None ->
        let s = Hashtbl.create 7 in
        Hashtbl.replace t.command_shares key s;
        s
    in
    Hashtbl.replace shares reply.Reply.replica reply.Reply.share;
    let all = Hashtbl.fold (fun _ s acc -> s :: acc) shares [] in
    match Cryptosim.Threshold.combine t.group ~digest:reply.Reply.digest all with
    | None -> ()
    | Some combined ->
      if Cryptosim.Threshold.verify t.group ~digest:reply.Reply.digest combined
      then begin
        Hashtbl.replace t.actuated reply.Reply.update_key ();
        Hashtbl.remove t.command_shares key;
        actuate t frame
      end
  end

let handle_reply t (reply : Reply.t) =
  match reply.Reply.body with
  | Reply.Command { rtu = target; frame } when target = Rtu.id t.rtu ->
    handle_command_share t reply ~frame
  | Reply.Command _ | Reply.Ack ->
    (match Endpoint.handle_reply t.endpoint reply with
    | None | Some Reply.Ack -> ()
    | Some (Reply.Command { rtu = target; frame }) ->
      if target = Rtu.id t.rtu then actuate t frame)
