(** Field-link frame payloads shared by the wire codec and the device
    fleet (lib/field).

    Two frames travel the last-mile link between a register-mapped
    device and its concentrator:

    - an {!advert}: the capability advertisement a device sends when
      its session links up (and again on every relink), describing its
      register map — per-table point counts plus a digest over the
      typed point descriptors;
    - a {!report}: a report-by-exception batch — the deadband
      exceptions and discrete flips since the last report, stamped with
      a per-session sequence number so the concentrator can deduplicate
      relink replays.

    The payload types live here (not in lib/field) so [Wire.Message]
    can carry them without the wire library depending on the fleet. *)

type table = Discrete_input | Coil | Input_register | Holding_register

val table_to_int : table -> int
val table_of_int : int -> table option
val table_name : table -> string

type advert = {
  concentrator : int;
  device : int;
  discrete_inputs : int;
  coils : int;
  input_registers : int;
  holding_registers : int;
  map_digest : Cryptosim.Digest.t;
}

type event = { table : table; address : int; value : int }

type report = {
  concentrator : int;
  device : int;
  seq : int;  (** per-session sequence number, increments per report *)
  events : event list;
}

(** [report_checksum r] folds the report's events into a 30-bit
    checksum. Concentrators chain these into the aggregate operations
    they submit for ordering, so every replica applies a value that
    commits to the underlying field data. *)
val report_checksum : report -> int

val event_checksum : int -> event -> int
val pp_advert : Format.formatter -> advert -> unit
val pp_report : Format.formatter -> report -> unit
val equal_advert : advert -> advert -> bool
val equal_report : report -> report -> bool
