(** Remote Terminal Unit (RTU/PLC) device model.

    Models the field device in a substation: a set of breakers
    (discrete points) and analog measurements (voltage, current,
    frequency, transformer tap). The analog process drifts with bounded
    noise each {!tick}; breakers change state only on command, with a
    configurable actuation delay expressed in ticks.

    This is the paper's "10 emulated substations" substitute: the
    polling workload and command round-trips exercise exactly the same
    data path. *)

type breaker_state = Open | Closed

type status = {
  rtu_id : int;
  seq : int;  (** status sequence number, increments per read *)
  breakers : breaker_state array;
  voltages_mv : int array;  (** millivolts, per feeder *)
  currents_ma : int array;  (** milliamps, per feeder *)
  frequency_mhz : int;  (** millihertz, nominal 60_000 *)
  tap_position : int;  (** transformer tap, [-16, 16] *)
}

type t

(** [create ~id ~breakers ~feeders ~rng] builds a device with the given
    point counts; all breakers start [Closed], analogs start at
    nominal values. *)
val create : id:int -> breakers:int -> feeders:int -> rng:Sim.Rng.t -> t

val id : t -> int

(** Physically plausible [(lo, hi)] envelopes.  Every analog mutation —
    random-walk ticks, open-breaker current collapse — is clamped to
    these closed intervals, so a soak of any length never leaves them. *)

val voltage_envelope_mv : int * int
val current_envelope_ma : int * int
val frequency_envelope_mhz : int * int

(** [tick t] advances the physical process one step: analog values take
    a bounded random walk around nominal; pending breaker operations
    complete when their actuation delay elapses. *)
val tick : t -> unit

(** [read_status t] samples the current state (increments the status
    sequence number — one poll, one sample). *)
val read_status : t -> status

(** [operate_breaker t ~index ~desired] requests a breaker state change;
    takes effect after 2 ticks (mechanical delay).
    @raise Invalid_argument if [index] is out of range. *)
val operate_breaker : t -> index:int -> desired:breaker_state -> unit

(** [set_tap t ~position] moves the transformer tap (clamped to
    [-16, 16]). *)
val set_tap : t -> position:int -> unit

(** [breaker t ~index] reads one breaker's current state. *)
val breaker : t -> index:int -> breaker_state

val breaker_count : t -> int
val feeder_count : t -> int

val pp_status : Format.formatter -> status -> unit
