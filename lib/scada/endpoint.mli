(** Client-side endpoint logic shared by substation proxies and HMIs.

    An endpoint assigns client sequence numbers, submits updates through
    a deployment-provided hook, collects threshold-signature shares from
    replica replies, validates the combined signature, measures
    submission-to-validation latency, and retransmits updates that are
    not confirmed within a timeout (covering origin-replica failures). *)

type t

(** [create ~engine ~client_id ~group ~resubmit_timeout_us ~submit ()] —
    [submit ~attempt update] hands the update to the deployment for
    routing; [attempt] starts at 0 and increments per retransmission.
    [telemetry] (default {!Telemetry.Sink.null}) receives the submit
    and confirmation milestones of every update this endpoint issues.

    [batch] (default {!Bft.Batch.singleton}) aggregates first-attempt
    submissions: updates accumulate until [max_batch] or [max_delay_us]
    and flush together through [submit_batch] (falling back to one
    [submit] per member when absent), firing the batched telemetry
    milestone per member at flush. A singleton policy bypasses the
    accumulator entirely — [submit] fires synchronously inside
    {!send_op}, and no timer is ever scheduled. Retransmissions always
    use [submit] individually.

    [shard] (default 0) tags the endpoint's timers (batch flush,
    retransmission watchdog) with the owning engine heap — the field
    shard in a site-partitioned deployment ({!Sim.Shard}). *)
val create :
  ?telemetry:Telemetry.Sink.t ->
  ?batch:Bft.Batch.policy ->
  ?submit_batch:(Bft.Update.t list -> unit) ->
  ?shard:int ->
  engine:Sim.Engine.t ->
  client_id:Bft.Types.client ->
  group:Cryptosim.Threshold.group ->
  resubmit_timeout_us:int ->
  submit:(attempt:int -> Bft.Update.t -> unit) ->
  unit ->
  t

(** [start t] arms the retransmission watchdog. *)
val start : t -> unit

(** [push_group t g] adopts a new epoch's threshold group; the previous
    one is retained (and only it) so in-flight replies signed by the
    outgoing epoch's group still combine during a membership cutover. *)
val push_group : t -> Cryptosim.Threshold.group -> unit

(** [send_op t op] wraps [op] into the next update and submits it. *)
val send_op : t -> Op.t -> Bft.Update.t

(** [handle_reply t reply] ingests one replica's share. Returns
    [Some body] the first time the shares for that update reach the
    threshold and the combined signature verifies; [None] otherwise. *)
val handle_reply : t -> Reply.t -> Reply.body option

(** [set_on_complete t f]: [f update ~latency_us] fires once per
    confirmed update. *)
val set_on_complete : t -> (Bft.Update.t -> latency_us:int -> unit) -> unit

val client_id : t -> Bft.Types.client
val pending_count : t -> int
val completed_count : t -> int
val resubmit_count : t -> int

(** [batch_policy t] is the current (possibly hot-swapped) aggregation
    policy. *)
val batch_policy : t -> Bft.Batch.policy

(** [set_batch_policy t p] swaps the aggregation policy on the live
    endpoint (runtime tuning plane). If the swap makes the buffered
    generation due — new [max_batch] at or below the buffered length,
    or a shorter deadline now in the past — it flushes immediately; the
    stale generation timer re-checks the deadline, so no update ships
    twice. Note a swap {e to} a singleton policy still drains buffered
    updates through the batch path; only future {!send_op}s bypass the
    accumulator.
    @raise Invalid_argument on an invalid policy. *)
val set_batch_policy : t -> Bft.Batch.policy -> unit
