type t = { engine : Sim.Engine.t; endpoint : Endpoint.t }

let create ?telemetry ?shard ~engine ~client_id ~group ~resubmit_timeout_us
    ~submit () =
  {
    engine;
    endpoint =
      Endpoint.create ?telemetry ?shard ~engine ~client_id ~group
        ~resubmit_timeout_us ~submit ();
  }

let start t = Endpoint.start t.endpoint

let open_breaker t ~rtu ~breaker =
  Endpoint.send_op t.endpoint
    (Op.Breaker_command { rtu; breaker; desired = Rtu.Open })

let close_breaker t ~rtu ~breaker =
  Endpoint.send_op t.endpoint
    (Op.Breaker_command { rtu; breaker; desired = Rtu.Closed })

let set_tap t ~rtu ~position =
  Endpoint.send_op t.endpoint (Op.Tap_command { rtu; position })

let read_state t =
  Endpoint.send_op t.endpoint
    (Op.Hmi_read { hmi_id = Endpoint.client_id t.endpoint })

let handle_reply t reply = ignore (Endpoint.handle_reply t.endpoint reply : Reply.body option)
let endpoint t = t.endpoint
let confirmed_commands t = Endpoint.completed_count t.endpoint
