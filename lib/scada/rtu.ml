type breaker_state = Open | Closed

type status = {
  rtu_id : int;
  seq : int;
  breakers : breaker_state array;
  voltages_mv : int array;
  currents_ma : int array;
  frequency_mhz : int;
  tap_position : int;
}

type pending_op = { target_index : int; desired : breaker_state; ticks_left : int }

type t = {
  rtu_id : int;
  rng : Sim.Rng.t;
  breakers : breaker_state array;
  voltages_mv : int array;
  currents_ma : int array;
  mutable frequency_mhz : int;
  mutable tap_position : int;
  mutable status_seq : int;
  mutable pending : pending_op list;
}

let nominal_voltage_mv = 13_800_000 (* 13.8 kV feeder *)
let nominal_current_ma = 400_000
let nominal_frequency_mhz = 60_000

(* Physically plausible envelopes: every analog mutation is clamped to
   these closed intervals, so no sequence of ticks/commands can drive a
   value outside them.  Currents reach down to 0 because an open
   breaker drops its feeder current to (near) zero. *)
let voltage_envelope_mv = (nominal_voltage_mv - 700_000, nominal_voltage_mv + 700_000)
let current_envelope_ma = (0, nominal_current_ma + 150_000)
let frequency_envelope_mhz = (nominal_frequency_mhz - 100, nominal_frequency_mhz + 100)

let clamp (lo, hi) v = max lo (min hi v)

let create ~id ~breakers ~feeders ~rng =
  if breakers <= 0 || feeders <= 0 then
    invalid_arg "Rtu.create: need at least one breaker and feeder";
  {
    rtu_id = id;
    rng;
    breakers = Array.make breakers Closed;
    voltages_mv = Array.make feeders nominal_voltage_mv;
    currents_ma = Array.make feeders nominal_current_ma;
    frequency_mhz = nominal_frequency_mhz;
    tap_position = 0;
    status_seq = 0;
    pending = [];
  }

let id t = t.rtu_id

let walk rng value ~nominal ~step ~envelope =
  (* Bounded random walk: drift plus mean reversion, clamped to the
     physical envelope. *)
  let drift = Sim.Rng.int rng (2 * step) - step in
  clamp envelope (value + drift + ((nominal - value) / 16))

let tick t =
  Array.iteri
    (fun i v ->
      t.voltages_mv.(i) <-
        walk t.rng v ~nominal:nominal_voltage_mv ~step:20_000
          ~envelope:voltage_envelope_mv)
    t.voltages_mv;
  Array.iteri
    (fun i c ->
      t.currents_ma.(i) <-
        walk t.rng c ~nominal:nominal_current_ma ~step:5_000
          ~envelope:current_envelope_ma)
    t.currents_ma;
  t.frequency_mhz <-
    walk t.rng t.frequency_mhz ~nominal:nominal_frequency_mhz ~step:5
      ~envelope:frequency_envelope_mhz;
  let due, waiting =
    List.partition (fun op -> op.ticks_left <= 1) t.pending
  in
  List.iter (fun op -> t.breakers.(op.target_index) <- op.desired) due;
  t.pending <- List.map (fun op -> { op with ticks_left = op.ticks_left - 1 }) waiting;
  (* An open breaker drops its feeder current to (near) zero. *)
  Array.iteri
    (fun i state ->
      if state = Open && i < Array.length t.currents_ma then
        t.currents_ma.(i) <- clamp current_envelope_ma (Sim.Rng.int t.rng 1_000))
    t.breakers

let read_status t =
  t.status_seq <- t.status_seq + 1;
  {
    rtu_id = t.rtu_id;
    seq = t.status_seq;
    breakers = Array.copy t.breakers;
    voltages_mv = Array.copy t.voltages_mv;
    currents_ma = Array.copy t.currents_ma;
    frequency_mhz = t.frequency_mhz;
    tap_position = t.tap_position;
  }

let operate_breaker t ~index ~desired =
  if index < 0 || index >= Array.length t.breakers then
    invalid_arg "Rtu.operate_breaker: index out of range";
  t.pending <- { target_index = index; desired; ticks_left = 2 } :: t.pending

let set_tap t ~position = t.tap_position <- max (-16) (min 16 position)
let breaker t ~index = t.breakers.(index)
let breaker_count t = Array.length t.breakers
let feeder_count t = Array.length t.voltages_mv

let pp_status ppf (s : status) =
  Format.fprintf ppf "rtu%d#%d breakers=[%s] f=%dmHz tap=%d" s.rtu_id s.seq
    (String.concat ""
       (Array.to_list
          (Array.map (function Open -> "O" | Closed -> "C") s.breakers)))
    s.frequency_mhz s.tap_position
