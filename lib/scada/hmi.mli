(** Human-Machine Interface model: the operator console.

    An HMI issues supervisory commands (breaker open/close, transformer
    tap moves) and ordered reads against the replicated SCADA master,
    validating threshold-signed confirmations like any other client.
    Scenario scripts drive it at chosen virtual times. *)

type t

(** [telemetry] (default {!Telemetry.Sink.null}) traces the lifecycle
    of every update this HMI issues. [shard] (default 0) tags the
    endpoint's timers with the owning engine heap ({!Sim.Shard}). *)
val create :
  ?telemetry:Telemetry.Sink.t ->
  ?shard:int ->
  engine:Sim.Engine.t ->
  client_id:Bft.Types.client ->
  group:Cryptosim.Threshold.group ->
  resubmit_timeout_us:int ->
  submit:(attempt:int -> Bft.Update.t -> unit) ->
  unit ->
  t

val start : t -> unit

(** [open_breaker t ~rtu ~breaker] / [close_breaker t ~rtu ~breaker]
    issue a supervisory command; returns the submitted update. *)
val open_breaker : t -> rtu:int -> breaker:int -> Bft.Update.t

val close_breaker : t -> rtu:int -> breaker:int -> Bft.Update.t

(** [set_tap t ~rtu ~position] issues a transformer-tap command. *)
val set_tap : t -> rtu:int -> position:int -> Bft.Update.t

(** [read_state t] issues an ordered read of the master state. *)
val read_state : t -> Bft.Update.t

val handle_reply : t -> Reply.t -> unit
val endpoint : t -> Endpoint.t

(** [confirmed_commands t] counts confirmed updates. *)
val confirmed_commands : t -> int
