type table = Discrete_input | Coil | Input_register | Holding_register

let table_to_int = function
  | Discrete_input -> 0
  | Coil -> 1
  | Input_register -> 2
  | Holding_register -> 3

let table_of_int = function
  | 0 -> Some Discrete_input
  | 1 -> Some Coil
  | 2 -> Some Input_register
  | 3 -> Some Holding_register
  | _ -> None

let table_name = function
  | Discrete_input -> "di"
  | Coil -> "co"
  | Input_register -> "ir"
  | Holding_register -> "hr"

type advert = {
  concentrator : int;
  device : int;
  discrete_inputs : int;
  coils : int;
  input_registers : int;
  holding_registers : int;
  map_digest : Cryptosim.Digest.t;
}

type event = { table : table; address : int; value : int }

type report = {
  concentrator : int;
  device : int;
  seq : int;
  events : event list;
}

let event_checksum acc { table; address; value } =
  let mix acc v = ((acc * 1_000_003) + v) land 0x3FFF_FFFF in
  mix (mix (mix acc (table_to_int table)) address) value

let report_checksum r = List.fold_left event_checksum (r.device land 0xFFFF) r.events

let pp_advert ppf (a : advert) =
  Format.fprintf ppf "advert(c%d,d%d,di%d/co%d/ir%d/hr%d,%a)" a.concentrator
    a.device a.discrete_inputs a.coils a.input_registers a.holding_registers
    Cryptosim.Digest.pp a.map_digest

let pp_report ppf (r : report) =
  Format.fprintf ppf "report(c%d,d%d,#%d,%d events)" r.concentrator r.device
    r.seq (List.length r.events)

let equal_advert (a : advert) (b : advert) =
  a.concentrator = b.concentrator && a.device = b.device
  && a.discrete_inputs = b.discrete_inputs
  && a.coils = b.coils
  && a.input_registers = b.input_registers
  && a.holding_registers = b.holding_registers
  && Cryptosim.Digest.equal a.map_digest b.map_digest

let equal_event (a : event) (b : event) =
  a.table = b.table && a.address = b.address && a.value = b.value

let equal_report (a : report) (b : report) =
  a.concentrator = b.concentrator && a.device = b.device && a.seq = b.seq
  && List.length a.events = List.length b.events
  && List.for_all2 equal_event a.events b.events
