(** Modbus/TCP wire codec (the subset Spire's proxies and the field
    fleet use).

    Byte-accurate encoding of the MBAP header and the PDU function
    codes needed to poll a register-mapped device and operate it:
    - [0x01] Read Coils (breaker states)
    - [0x02] Read Discrete Inputs (status bits)
    - [0x03] Read Holding Registers (analog measurements)
    - [0x04] Read Input Registers (sensor values)
    - [0x05] Write Single Coil (breaker open/close)
    - [0x06] Write Single Register (transformer tap)
    - [0x0F] Write Multiple Coils
    - [0x10] Write Multiple Registers

    Responses mirror requests; exception responses carry
    [function | 0x80] and an exception code. All multi-byte fields are
    big-endian per the Modbus specification. *)

type request =
  | Read_coils of { start : int; count : int }
  | Read_discrete_inputs of { start : int; count : int }
  | Read_holding_registers of { start : int; count : int }
  | Read_input_registers of { start : int; count : int }
  | Write_single_coil of { address : int; value : bool }
  | Write_single_register of { address : int; value : int }
  | Write_multiple_coils of { start : int; values : bool list }
      (** at most 0x7B0 coils per write (byte count is a u8) *)
  | Write_multiple_registers of { start : int; values : int list }
      (** at most 123 registers per write (byte count is a u8) *)

type response =
  | Coils of bool list
  | Discrete_inputs of bool list
  | Holding_registers of int list  (** 16-bit unsigned values *)
  | Input_registers of int list  (** 16-bit unsigned values *)
  | Coil_written of { address : int; value : bool }
  | Register_written of { address : int; value : int }
  | Coils_written of { start : int; count : int }  (** echo of a 0x0F write *)
  | Registers_written of { start : int; count : int }
      (** echo of a 0x10 write *)
  | Exception_response of { function_code : int; exception_code : int }

type 'a frame = { transaction : int; unit_id : int; body : 'a }

(** [encode_request f] renders an ADU (MBAP header + PDU) as bytes. *)
val encode_request : request frame -> string

(** [decode_request s] parses bytes back; [Error _] describes the first
    malformation found. *)
val decode_request : string -> (request frame, string) result

val encode_response : response frame -> string
val decode_response : string -> (response frame, string) result

val pp_request : Format.formatter -> request -> unit
val pp_response : Format.formatter -> response -> unit
