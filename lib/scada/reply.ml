type body = Ack | Command of { rtu : int; frame : string }

type t = {
  replica : Bft.Types.replica;
  update_key : Bft.Types.client * int;
  exec_index : int;
  digest : Cryptosim.Digest.t;
  share : Cryptosim.Threshold.share;
  body : body;
}

let body_digest ~exec_index ~update_digest ~state ~body =
  let body_str =
    match body with
    | Ack -> "ack"
    | Command { rtu; frame } -> "cmd:" ^ string_of_int rtu ^ ":" ^ frame
  in
  Cryptosim.Digest.combine
    (Cryptosim.Digest.of_string
       ("reply:" ^ string_of_int exec_index ^ ":" ^ body_str))
    (Cryptosim.Digest.combine update_digest state)

let pp ppf t =
  Format.fprintf ppf "reply(r%d,(%d,%d),idx=%d)" t.replica (fst t.update_key)
    (snd t.update_key) t.exec_index
