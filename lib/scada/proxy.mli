(** Substation proxy: the field-side gateway between an RTU and the
    replicated SCADA master.

    Every poll interval the proxy advances the device's physical
    process, performs a full DNP3 poll round-trip against the RTU
    (encode request → decode at the device → encode response → decode
    at the proxy — byte-level, so the codecs are on the hot path, as in
    Spire), wraps the status into an ordered update, and submits it to
    the replicated master. Confirmations arrive as threshold-signed
    replies via the shared {!Endpoint} machinery.

    Supervisory commands flow the other way: replicas that execute a
    breaker/tap command send the proxy a threshold-signed DNP3 frame;
    on the first valid combination the proxy actuates the RTU. *)

type t

(** Which field protocol the proxy speaks to its RTU. [`Dnp3] polls
    with one class-0 read; [`Modbus] polls with two exchanges (read
    coils + read holding registers over a 32-bit register map) and
    translates supervisory DNP3 command frames from the masters into
    Modbus writes — the proxy is a protocol gateway, as in the real
    system. *)
type field_protocol = [ `Dnp3 | `Modbus ]

(** [telemetry] (default {!Telemetry.Sink.null}) traces the lifecycle
    of every update this proxy submits. [batch]/[submit_batch] are
    forwarded to the underlying {!Endpoint}: status polls accumulate
    under the size/deadline policy and flush as one client batch.
    [shard] (default 0) tags the proxy's poll and endpoint timers with
    the owning engine heap ({!Sim.Shard}). *)
val create :
  ?field_protocol:field_protocol ->
  ?telemetry:Telemetry.Sink.t ->
  ?batch:Bft.Batch.policy ->
  ?submit_batch:(Bft.Update.t list -> unit) ->
  ?shard:int ->
  engine:Sim.Engine.t ->
  rtu:Rtu.t ->
  client_id:Bft.Types.client ->
  poll_interval_us:int ->
  group:Cryptosim.Threshold.group ->
  resubmit_timeout_us:int ->
  submit:(attempt:int -> Bft.Update.t -> unit) ->
  unit ->
  t

val field_protocol : t -> field_protocol

(** [start t] begins the polling loop and retransmission watchdog. *)
val start : t -> unit

(** [stop t] halts polling (e.g. substation disconnected in a
    scenario). *)
val stop : t -> unit

(** [handle_reply t reply] ingests a replica reply; commands embedded in
    a confirmed reply are actuated on the RTU exactly once. *)
val handle_reply : t -> Reply.t -> unit

(** [endpoint t] exposes the underlying endpoint (latency callback,
    counters). *)
val endpoint : t -> Endpoint.t

val rtu : t -> Rtu.t

(** [polls_sent t] counts status updates submitted so far. *)
val polls_sent : t -> int

(** [commands_applied t] counts device commands actuated. *)
val commands_applied : t -> int
