(** End-to-end chaos run: system + schedule + always-on oracles.

    A run's virtual timeline has four windows:

    {v
    |-- baseline --|-- turbulence (schedule) --|-- settle --|-- post --|
        fault-free     faults inject + heal       drain       back to
        reference                                in-flight    normal?
    v}

    Oracles watched throughout:
    - {b agreement}: correct replicas' execution logs stay
      prefix-compatible and application states agree (sampled
      periodically);
    - {b sla}: every confirmed update meets the bounded-delay SLA — the
      strict calm bound outside the turbulence window, a relaxed bound
      for updates submitted while faults were active (attribution is by
      submission time, with a guard for updates already in flight when
      the first fault lands);
    - {b quorum}: availability of correct, connected, non-recovering
      replicas never drops below the ordering quorum;
    - {b recovery}: after healing and settling, updates confirm again
      and median latency returns to within a factor of the baseline.

    A report is reproducible from its seed: the same seed rebuilds the
    same system, the same schedule, and the same event interleaving. *)

type config = {
  system : Spire.System.config;  (** base deployment (seed overridden) *)
  budget : Schedule.budget option;
      (** fault budget for {!soak}; default derived from the quorum *)
  baseline_us : int;
  turbulence_us : int;  (** schedule horizon *)
  settle_us : int;
  post_us : int;
  inflight_guard_us : int;
      (** updates submitted this close before the turbulence window are
          held to the relaxed bound too *)
  sample_interval_us : int;  (** agreement/quorum sampling cadence *)
  calm_bound_ms : float;
  turbulent_bound_ms : float;
  recovery_factor : float;  (** post-heal p50 <= factor * baseline p50 *)
  recovery_slack_ms : float;
}

(** [default_config ()] is a quick-scale soak: the paper's 6-replica
    wide-area deployment with 3 substations, 3s baseline, 6s of
    turbulence, 4.5s settle, 4s post-heal (17.5s virtual per run). *)
val default_config : unit -> config

type report = {
  seed : int64;
  schedule : Schedule.t;
  verdicts : (string * Oracle.Verdict.t) list;
      (** ["agreement"; "sla"; "quorum"; "recovery"] *)
  submitted : int;
  confirmed : int;
  baseline_p50_ms : float;
  post_p50_ms : float;
  min_available : int;
  worst_latency_ms : float;
  agreement_checks : int;
  wire_decode_errors : int;
      (** decode-on-delivery failures; always 0 unless the system config
          sets [wire_debug], and any non-zero value is a codec bug *)
}

(** [clean r] — every oracle passed and no wire decode errors. *)
val clean : report -> bool

(** [failures r] — the failing oracles, if any. *)
val failures : report -> (string * Oracle.Verdict.t) list

val pp_report : Format.formatter -> report -> unit

(** [soak ~seed ()] generates a within-budget schedule from [seed] and
    runs it; the chaos soak property asserts [clean] on the result. *)
val soak : ?config:config -> seed:int64 -> unit -> report

(** [run ~seed ~schedule ()] runs an explicit schedule — including
    deliberately over-budget ones, used to prove the oracles fire. *)
val run : ?config:config -> seed:int64 -> schedule:Schedule.t -> unit -> report

(** {1 Reconfiguration soak}

    A within-budget fault schedule runs {e while} the membership is
    being reconfigured through the ordered stream: a control-center
    failover mid-turbulence, then growth into a pre-provisioned
    standby data center during the settle window. Oracles: agreement
    across the cutovers, the epoch-safety check (at most one quorate
    epoch, unique certificate chain), and post-heal progress. *)

type reconfig_report = {
  rc_seed : int64;
  rc_schedule : Schedule.t;
  rc_verdicts : (string * Oracle.Verdict.t) list;
      (** ["agreement"; "epoch"; "progress"] *)
  rc_final_epoch : int;
  rc_cutovers : (int * int * int) list;
  rc_submitted : int;
  rc_confirmed : int;
  rc_stale_frames : int;
}

val reconfig_clean : reconfig_report -> bool
val pp_reconfig_report : Format.formatter -> reconfig_report -> unit

(** [reconfig_soak ~seed ()] — deterministic in [seed], like {!soak}.
    The standby site is added to the config automatically. *)
val reconfig_soak : ?config:config -> seed:int64 -> unit -> reconfig_report

(** [soak_many ~seeds ()] runs one {!soak} per seed, farmed across
    OCaml domains with {!Sim.Parallel} ([domains] defaults to the
    runtime's recommendation; [1] runs inline). Reports come back in
    seed-list order and are byte-identical regardless of domain count. *)
val soak_many :
  ?config:config -> ?domains:int -> seeds:int64 list -> unit -> report list
