type config = {
  system : Spire.System.config;
  budget : Schedule.budget option;
  baseline_us : int;
  turbulence_us : int;
  settle_us : int;
  post_us : int;
  inflight_guard_us : int;
  sample_interval_us : int;
  calm_bound_ms : float;
  turbulent_bound_ms : float;
  recovery_factor : float;
  recovery_slack_ms : float;
}

let default_config () =
  {
    system =
      { (Spire.System.default_config ()) with Spire.System.substations = 3 };
    budget = None;
    baseline_us = 3_000_000;
    turbulence_us = 6_000_000;
    (* Settle must outlast the worst client resubmission chain: an
       update lost twice during turbulence retries under exponential
       backoff (2 s then 4 s), and per-client FIFO successors drain
       only once the head confirms — up to ~4 s after the last fault
       heals. *)
    settle_us = 4_500_000;
    post_us = 4_000_000;
    inflight_guard_us = 1_000_000;
    sample_interval_us = 100_000;
    calm_bound_ms = 250.;
    turbulent_bound_ms = 20_000.;
    recovery_factor = 3.;
    recovery_slack_ms = 10.;
  }

type report = {
  seed : int64;
  schedule : Schedule.t;
  verdicts : (string * Oracle.Verdict.t) list;
  submitted : int;
  confirmed : int;
  baseline_p50_ms : float;
  post_p50_ms : float;
  min_available : int;
  worst_latency_ms : float;
  agreement_checks : int;
  wire_decode_errors : int;
}

let clean r =
  r.wire_decode_errors = 0
  && List.for_all (fun (_, v) -> Oracle.Verdict.is_pass v) r.verdicts

let failures r =
  List.filter (fun (_, v) -> not (Oracle.Verdict.is_pass v)) r.verdicts

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>chaos report (seed %Ld): %s@,%a@,\
     submitted %d, confirmed %d; baseline p50 %.1fms, post-heal p50 %.1fms; \
     min quorum availability %d; worst latency %.1fms@,"
    r.seed
    (if clean r then "CLEAN" else "VIOLATIONS")
    Schedule.pp r.schedule r.submitted r.confirmed r.baseline_p50_ms
    r.post_p50_ms r.min_available r.worst_latency_ms;
  if r.wire_decode_errors > 0 then
    Format.fprintf ppf "  wire decode errors: %d@," r.wire_decode_errors;
  List.iter
    (fun (name, v) ->
      Format.fprintf ppf "  %-10s %a@," name Oracle.Verdict.pp v)
    r.verdicts;
  Format.fprintf ppf "@]"

(* Availability as the quorum watchdog defines it: correct (no fault
   knob set), process up, and overlay daemon reachable. *)
let available_count sys =
  let n = Spire.System.replica_count sys in
  let net = Spire.System.net sys in
  List.length
    (List.filter
       (fun r ->
         let f = Spire.System.faults sys r in
         (not f.Bft.Faults.crashed)
         && (not (Bft.Faults.is_byzantine f))
         && Overlay.Net.node_alive net (Spire.System.node_of_replica sys r))
       (List.init n Fun.id))

let correct_replicas sys =
  let n = Spire.System.replica_count sys in
  List.filter
    (fun r ->
      let f = Spire.System.faults sys r in
      (not f.Bft.Faults.crashed) && not (Bft.Faults.is_byzantine f))
    (List.init n Fun.id)

let execute cfg ~seed sys (schedule : Schedule.t) =
  let engine = Spire.System.engine sys in
  let turb_start = cfg.baseline_us in
  let heal_us = turb_start + schedule.Schedule.horizon_us in
  let calm_start = heal_us + cfg.settle_us in
  let end_us = calm_start + cfg.post_us in
  (* Submissions inside [turb_window] are held to the relaxed bound:
     the guard also covers updates already in flight when the first
     fault lands. *)
  let turbulent_from = turb_start - cfg.inflight_guard_us in
  let agreement = Oracle.Agreement.create () in
  let quorum_watch =
    Oracle.Quorum_watch.create ~quorum:cfg.system.Spire.System.quorum
  in
  let sla =
    Oracle.Sla.create ~turbulent_bound_ms:cfg.turbulent_bound_ms
      ~calm_bound_ms:cfg.calm_bound_ms
  in
  let baseline_hist = Stats.Histogram.create () in
  let post_hist = Stats.Histogram.create () in
  let series = Spire.System.latency_series sys in
  let drained = ref 0 in
  let drain_series () =
    let samples = Stats.Timeseries.to_list series in
    let fresh = List.filteri (fun i _ -> i >= !drained) samples in
    drained := List.length samples;
    List.iter
      (fun (confirmed_us, latency_ms) ->
        let submitted_us = confirmed_us - int_of_float (latency_ms *. 1000.) in
        let turbulent =
          submitted_us >= turbulent_from && submitted_us < calm_start
        in
        Oracle.Sla.set_phase sla
          (if turbulent then Oracle.Sla.Turbulent else Oracle.Sla.Calm);
        Oracle.Sla.observe sla ~time_us:confirmed_us ~latency_ms;
        if submitted_us < turbulent_from then
          Stats.Histogram.add baseline_hist latency_ms
        else if submitted_us >= calm_start then
          Stats.Histogram.add post_hist latency_ms)
      fresh
  in
  let sample () =
    let now = Sim.Engine.now engine in
    let correct = correct_replicas sys in
    Oracle.Agreement.observe agreement
      ~logs:(List.map (fun r -> (r, Spire.System.exec_log sys r)) correct)
      ~states:
        (List.map
           (fun r ->
             let m = Spire.System.master sys r in
             (r, Scada.Master.applied_count m, Scada.Master.state_digest m))
           correct);
    Oracle.Quorum_watch.observe quorum_watch ~time_us:now
      ~available:(available_count sys);
    drain_series ()
  in
  ignore
    (Sim.Engine.periodic engine ~interval_us:cfg.sample_interval_us sample
      : Sim.Engine.timer);
  Injector.apply sys ~offset_us:turb_start schedule;
  Spire.System.start sys;
  Spire.System.run sys ~duration_us:end_us;
  sample ();
  (* Post-heal recovery: service resumed and latency back near the
     fault-free baseline. Expect at least a third of the calm-window
     polls to have confirmed. *)
  let min_confirmed =
    cfg.system.Spire.System.substations * cfg.post_us
    / cfg.system.Spire.System.poll_interval_us
    / 3
  in
  let recovery =
    Oracle.Recovery_check.check ~factor:cfg.recovery_factor
      ~slack_ms:cfg.recovery_slack_ms ~min_confirmed ~baseline:baseline_hist
      ~post:post_hist
  in
  {
    seed;
    schedule;
    verdicts =
      [
        ("agreement", Oracle.Agreement.verdict agreement);
        ("sla", Oracle.Sla.verdict sla);
        ("quorum", Oracle.Quorum_watch.verdict quorum_watch);
        ("recovery", recovery.Oracle.Recovery_check.verdict);
      ];
    submitted = Spire.System.submitted_updates sys;
    confirmed = Spire.System.confirmed_updates sys;
    baseline_p50_ms = recovery.Oracle.Recovery_check.baseline_p50_ms;
    post_p50_ms = recovery.Oracle.Recovery_check.post_p50_ms;
    min_available = Oracle.Quorum_watch.min_available quorum_watch;
    worst_latency_ms = Oracle.Sla.worst_ms sla;
    agreement_checks = Oracle.Agreement.checks agreement;
    wire_decode_errors = Spire.System.wire_decode_errors sys;
  }

let build_system cfg ~seed =
  Spire.System.create { cfg.system with Spire.System.seed }

let run ?(config = default_config ()) ~seed ~schedule () =
  execute config ~seed (build_system config ~seed) schedule

let soak ?(config = default_config ()) ~seed () =
  let sys = build_system config ~seed in
  let profile = Injector.profile_of_system sys in
  let budget =
    match config.budget with
    | Some b -> b
    | None -> Schedule.budget_of_quorum profile.Schedule.quorum
  in
  let schedule =
    Schedule.generate ~profile ~budget
      ~seed:(Int64.logxor seed 0x5EEDFACEL)
      ~horizon_us:config.turbulence_us
  in
  (match Schedule.validate ~profile ~budget schedule with
  | Ok () -> ()
  | Error msg -> failwith ("Chaos.Harness.soak: generator emitted " ^ msg));
  execute config ~seed sys schedule
