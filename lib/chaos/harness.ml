type config = {
  system : Spire.System.config;
  budget : Schedule.budget option;
  baseline_us : int;
  turbulence_us : int;
  settle_us : int;
  post_us : int;
  inflight_guard_us : int;
  sample_interval_us : int;
  calm_bound_ms : float;
  turbulent_bound_ms : float;
  recovery_factor : float;
  recovery_slack_ms : float;
}

let default_config () =
  {
    system =
      { (Spire.System.default_config ()) with Spire.System.substations = 3 };
    budget = None;
    baseline_us = 3_000_000;
    turbulence_us = 6_000_000;
    (* Settle must outlast the worst client resubmission chain: an
       update lost twice during turbulence retries under exponential
       backoff (2 s then 4 s), and per-client FIFO successors drain
       only once the head confirms — up to ~4 s after the last fault
       heals. *)
    settle_us = 4_500_000;
    post_us = 4_000_000;
    inflight_guard_us = 1_000_000;
    sample_interval_us = 100_000;
    calm_bound_ms = 250.;
    turbulent_bound_ms = 20_000.;
    recovery_factor = 3.;
    recovery_slack_ms = 10.;
  }

type report = {
  seed : int64;
  schedule : Schedule.t;
  verdicts : (string * Oracle.Verdict.t) list;
  submitted : int;
  confirmed : int;
  baseline_p50_ms : float;
  post_p50_ms : float;
  min_available : int;
  worst_latency_ms : float;
  agreement_checks : int;
  wire_decode_errors : int;
}

let clean r =
  r.wire_decode_errors = 0
  && List.for_all (fun (_, v) -> Oracle.Verdict.is_pass v) r.verdicts

let failures r =
  List.filter (fun (_, v) -> not (Oracle.Verdict.is_pass v)) r.verdicts

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>chaos report (seed %Ld): %s@,%a@,\
     submitted %d, confirmed %d; baseline p50 %.1fms, post-heal p50 %.1fms; \
     min quorum availability %d; worst latency %.1fms@,"
    r.seed
    (if clean r then "CLEAN" else "VIOLATIONS")
    Schedule.pp r.schedule r.submitted r.confirmed r.baseline_p50_ms
    r.post_p50_ms r.min_available r.worst_latency_ms;
  if r.wire_decode_errors > 0 then
    Format.fprintf ppf "  wire decode errors: %d@," r.wire_decode_errors;
  List.iter
    (fun (name, v) ->
      Format.fprintf ppf "  %-10s %a@," name Oracle.Verdict.pp v)
    r.verdicts;
  Format.fprintf ppf "@]"

(* Availability as the quorum watchdog defines it: correct (no fault
   knob set), process up, and overlay daemon reachable. *)
let available_count sys =
  let n = Spire.System.replica_count sys in
  let net = Spire.System.net sys in
  List.length
    (List.filter
       (fun r ->
         let f = Spire.System.faults sys r in
         (not f.Bft.Faults.crashed)
         && (not (Bft.Faults.is_byzantine f))
         && Overlay.Net.node_alive net (Spire.System.node_of_replica sys r))
       (List.init n Fun.id))

let correct_replicas sys =
  let n = Spire.System.replica_count sys in
  List.filter
    (fun r ->
      let f = Spire.System.faults sys r in
      (not f.Bft.Faults.crashed) && not (Bft.Faults.is_byzantine f))
    (List.init n Fun.id)

let execute cfg ~seed sys (schedule : Schedule.t) =
  let engine = Spire.System.engine sys in
  let turb_start = cfg.baseline_us in
  let heal_us = turb_start + schedule.Schedule.horizon_us in
  let calm_start = heal_us + cfg.settle_us in
  let end_us = calm_start + cfg.post_us in
  (* Submissions inside [turb_window] are held to the relaxed bound:
     the guard also covers updates already in flight when the first
     fault lands. *)
  let turbulent_from = turb_start - cfg.inflight_guard_us in
  let agreement = Oracle.Agreement.create () in
  let quorum_watch =
    Oracle.Quorum_watch.create ~quorum:cfg.system.Spire.System.quorum
  in
  let sla =
    Oracle.Sla.create ~turbulent_bound_ms:cfg.turbulent_bound_ms
      ~calm_bound_ms:cfg.calm_bound_ms
  in
  let baseline_hist = Stats.Histogram.create () in
  let post_hist = Stats.Histogram.create () in
  let series = Spire.System.latency_series sys in
  let drained = ref 0 in
  let drain_series () =
    let samples = Stats.Timeseries.to_list series in
    let fresh = List.filteri (fun i _ -> i >= !drained) samples in
    drained := List.length samples;
    List.iter
      (fun (confirmed_us, latency_ms) ->
        let submitted_us = confirmed_us - int_of_float (latency_ms *. 1000.) in
        let turbulent =
          submitted_us >= turbulent_from && submitted_us < calm_start
        in
        Oracle.Sla.set_phase sla
          (if turbulent then Oracle.Sla.Turbulent else Oracle.Sla.Calm);
        Oracle.Sla.observe sla ~time_us:confirmed_us ~latency_ms;
        if submitted_us < turbulent_from then
          Stats.Histogram.add baseline_hist latency_ms
        else if submitted_us >= calm_start then
          Stats.Histogram.add post_hist latency_ms)
      fresh
  in
  let sample () =
    let now = Sim.Engine.now engine in
    let correct = correct_replicas sys in
    Oracle.Agreement.observe agreement
      ~logs:(List.map (fun r -> (r, Spire.System.exec_log sys r)) correct)
      ~states:
        (List.map
           (fun r ->
             let m = Spire.System.master sys r in
             (r, Scada.Master.applied_count m, Scada.Master.state_digest m))
           correct);
    Oracle.Quorum_watch.observe quorum_watch ~time_us:now
      ~available:(available_count sys);
    drain_series ()
  in
  ignore
    (Sim.Engine.periodic engine ~interval_us:cfg.sample_interval_us sample
      : Sim.Engine.timer);
  Injector.apply sys ~offset_us:turb_start schedule;
  Spire.System.start sys;
  Spire.System.run sys ~duration_us:end_us;
  sample ();
  (* Post-heal recovery: service resumed and latency back near the
     fault-free baseline. Expect at least a third of the calm-window
     polls to have confirmed. *)
  let min_confirmed =
    cfg.system.Spire.System.substations * cfg.post_us
    / cfg.system.Spire.System.poll_interval_us
    / 3
  in
  let recovery =
    Oracle.Recovery_check.check ~factor:cfg.recovery_factor
      ~slack_ms:cfg.recovery_slack_ms ~min_confirmed ~baseline:baseline_hist
      ~post:post_hist
  in
  {
    seed;
    schedule;
    verdicts =
      [
        ("agreement", Oracle.Agreement.verdict agreement);
        ("sla", Oracle.Sla.verdict sla);
        ("quorum", Oracle.Quorum_watch.verdict quorum_watch);
        ("recovery", recovery.Oracle.Recovery_check.verdict);
      ];
    submitted = Spire.System.submitted_updates sys;
    confirmed = Spire.System.confirmed_updates sys;
    baseline_p50_ms = recovery.Oracle.Recovery_check.baseline_p50_ms;
    post_p50_ms = recovery.Oracle.Recovery_check.post_p50_ms;
    min_available = Oracle.Quorum_watch.min_available quorum_watch;
    worst_latency_ms = Oracle.Sla.worst_ms sla;
    agreement_checks = Oracle.Agreement.checks agreement;
    wire_decode_errors = Spire.System.wire_decode_errors sys;
  }

let build_system cfg ~seed =
  Spire.System.create { cfg.system with Spire.System.seed }

let run ?(config = default_config ()) ~seed ~schedule () =
  execute config ~seed (build_system config ~seed) schedule

(* ------------------------------------------------------------------ *)
(* Reconfiguration soak: a within-budget fault schedule runs WHILE the
   membership is being reconfigured through the ordered stream — a
   control-center failover mid-turbulence, then growth into the
   pre-provisioned standby site during the settle window. Safety
   oracles (agreement across the cutover, at-most-one-quorate-epoch,
   certificate-chain uniqueness) are sampled throughout; progress is
   asserted on the post-heal window. *)

type reconfig_report = {
  rc_seed : int64;
  rc_schedule : Schedule.t;
  rc_verdicts : (string * Oracle.Verdict.t) list;
      (** ["agreement"; "epoch"; "progress"] *)
  rc_final_epoch : int;
  rc_cutovers : (int * int * int) list;
  rc_submitted : int;
  rc_confirmed : int;
  rc_stale_frames : int;
}

let reconfig_clean r =
  List.for_all (fun (_, v) -> Oracle.Verdict.is_pass v) r.rc_verdicts

let pp_reconfig_report ppf r =
  Format.fprintf ppf
    "@[<v>reconfig soak (seed %Ld): %s@,%a@,\
     final epoch %d (%d cutovers); submitted %d, confirmed %d; \
     stale frames %d@,"
    r.rc_seed
    (if reconfig_clean r then "CLEAN" else "VIOLATIONS")
    Schedule.pp r.rc_schedule r.rc_final_epoch
    (List.length r.rc_cutovers)
    r.rc_submitted r.rc_confirmed r.rc_stale_frames;
  List.iter
    (fun (name, v) ->
      Format.fprintf ppf "  %-10s %a@," name Oracle.Verdict.pp v)
    r.rc_verdicts;
  Format.fprintf ppf "@]"

let reconfig_soak ?(config = default_config ()) ~seed () =
  let config =
    {
      config with
      system =
        {
          config.system with
          Spire.System.standby_site_sizes = [ 2 ];
          seed;
        };
    }
  in
  let sys = Spire.System.create config.system in
  let engine = Spire.System.engine sys in
  let profile = Injector.profile_of_system sys in
  let budget =
    match config.budget with
    | Some b -> b
    | None -> Schedule.budget_of_quorum profile.Schedule.quorum
  in
  let schedule =
    Schedule.generate ~profile ~budget
      ~seed:(Int64.logxor seed 0x0E11FACEL)
      ~horizon_us:config.turbulence_us
  in
  (match Schedule.validate ~profile ~budget schedule with
  | Ok () -> ()
  | Error msg ->
    failwith ("Chaos.Harness.reconfig_soak: generator emitted " ^ msg));
  let turb_start = config.baseline_us in
  let heal_us = turb_start + schedule.Schedule.horizon_us in
  let calm_start = heal_us + config.settle_us in
  let end_us = calm_start + config.post_us in
  let agreement = Oracle.Agreement.create () in
  let epoch_check = Oracle.Epoch_check.create () in
  let confirmed_at_calm = ref 0 in
  let sample () =
    let now = Sim.Engine.now engine in
    (* Agreement over every provisioned replica the system itself
       considers correct — retired replicas keep a valid prefix. *)
    let correct =
      List.filter
        (fun r ->
          let f = Spire.System.faults sys r in
          (not f.Bft.Faults.crashed) && not (Bft.Faults.is_byzantine f))
        (List.init (Spire.System.universe_count sys) Fun.id)
    in
    Oracle.Agreement.observe agreement
      ~logs:(List.map (fun r -> (r, Spire.System.exec_log sys r)) correct)
      ~states:
        (List.map
           (fun r ->
             let m = Spire.System.master sys r in
             (r, Scada.Master.applied_count m, Scada.Master.state_digest m))
           correct);
    let dir = Spire.System.directory sys in
    Oracle.Epoch_check.observe_activity epoch_check ~time_us:now
      ~live:(Spire.System.epoch_activity sys)
      ~quorum_of:(fun e ->
        match Member.Directory.cert_of_epoch dir e with
        | Some c -> Member.Cert.quorum_size c
        | None -> max_int)
  in
  ignore
    (Sim.Engine.periodic engine ~interval_us:config.sample_interval_us sample
      : Sim.Engine.timer);
  Spire.System.on_epoch_change sys (fun e ->
      match
        Member.Directory.cert_of_epoch (Spire.System.directory sys) e
      with
      | Some c ->
        Oracle.Epoch_check.observe_cutover epoch_check ~epoch:e
          ~boundary_exec:(Member.Cert.boundary_exec c)
          ~digest:(Member.Cert.digest c)
      | None -> ());
  Injector.apply sys ~offset_us:turb_start schedule;
  (* Mid-turbulence: control-center failover (same resilience, same n —
     the fault budget stays survivable throughout). *)
  ignore
    (Sim.Engine.schedule_at engine
       ~time_us:(turb_start + (schedule.Schedule.horizon_us / 3))
       (fun () ->
         Spire.System.submit_reconfig sys [ Member.Reconfig.Promote 1 ])
      : Sim.Engine.timer);
  (* During settle: grow into the standby data center (k: 1 -> 2). *)
  ignore
    (Sim.Engine.schedule_at engine ~time_us:(heal_us + 1_000_000) (fun () ->
         Spire.System.submit_reconfig sys
           [
             Member.Reconfig.Set_resilience { f = 1; k = 2 };
             Member.Reconfig.Add_site
               {
                 site_id = 4;
                 role = Member.Cert.Data_center;
                 members = [ 6; 7 ];
               };
           ])
      : Sim.Engine.timer);
  ignore
    (Sim.Engine.schedule_at engine ~time_us:calm_start (fun () ->
         confirmed_at_calm := Spire.System.confirmed_updates sys)
      : Sim.Engine.timer);
  Spire.System.start sys;
  Spire.System.run sys ~duration_us:end_us;
  sample ();
  (match Spire.System.epoch_violation sys with
  | Some v -> Oracle.Epoch_check.note_violation epoch_check v
  | None -> ());
  let confirmed = Spire.System.confirmed_updates sys in
  let min_confirmed =
    config.system.Spire.System.substations * config.post_us
    / config.system.Spire.System.poll_interval_us / 3
  in
  let progress =
    let post = confirmed - !confirmed_at_calm in
    if Spire.System.current_epoch sys < 2 then
      Oracle.Verdict.failf "reconfigurations incomplete: epoch %d < 2"
        (Spire.System.current_epoch sys)
    else if post < min_confirmed then
      Oracle.Verdict.failf "post-heal confirmations %d < %d" post min_confirmed
    else Oracle.Verdict.pass
  in
  {
    rc_seed = seed;
    rc_schedule = schedule;
    rc_verdicts =
      [
        ("agreement", Oracle.Agreement.verdict agreement);
        ("epoch", Oracle.Epoch_check.verdict epoch_check);
        ("progress", progress);
      ];
    rc_final_epoch = Spire.System.current_epoch sys;
    rc_cutovers = Spire.System.cutovers sys;
    rc_submitted = Spire.System.submitted_updates sys;
    rc_confirmed = confirmed;
    rc_stale_frames = Spire.System.stale_epoch_frames sys;
  }

let soak ?(config = default_config ()) ~seed () =
  let sys = build_system config ~seed in
  let profile = Injector.profile_of_system sys in
  let budget =
    match config.budget with
    | Some b -> b
    | None -> Schedule.budget_of_quorum profile.Schedule.quorum
  in
  let schedule =
    Schedule.generate ~profile ~budget
      ~seed:(Int64.logxor seed 0x5EEDFACEL)
      ~horizon_us:config.turbulence_us
  in
  (match Schedule.validate ~profile ~budget schedule with
  | Ok () -> ()
  | Error msg -> failwith ("Chaos.Harness.soak: generator emitted " ^ msg));
  execute config ~seed sys schedule

let soak_many ?(config = default_config ()) ?domains ~seeds () =
  (* Each soak builds its own system from its seed — nothing is shared
     between jobs, so they satisfy the Sim.Parallel self-containment
     contract and the report list is identical for any domain count. *)
  let seeds = Array.of_list seeds in
  Array.to_list
    (Sim.Parallel.map ?domains (fun seed -> soak ~config ~seed ()) seeds)
