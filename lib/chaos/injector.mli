(** Applies a {!Schedule} to a running {!Spire.System}.

    Every fault is translated into engine events against the system's
    existing injection surface: overlay kill/restore/degrade hooks,
    replica fault knobs, site isolation, and crash/restore with state
    transfer. Injection is itself deterministic — the schedule plus the
    system seed reproduce a run exactly. *)

(** [profile_of_system sys] derives the generator/validator profile
    (replica sites and inter-site links) from a built system. *)
val profile_of_system : Spire.System.t -> Schedule.profile

(** [apply sys ~offset_us schedule] arms every fault of [schedule],
    shifted by [offset_us] of virtual time (the chaos harness runs a
    fault-free baseline first). Call before or during the run; events
    in the past fire immediately. *)
val apply : Spire.System.t -> offset_us:int -> Schedule.t -> unit
