(** Declarative, deterministically-seeded fault schedules.

    A schedule is a list of timed fault injections over a finite
    horizon; every fault carries its own healing time, so a valid
    schedule is fully healed at the horizon. Faults compose — several
    may be active at once — subject to a {!budget} that mirrors the
    paper's resilience envelope: at most [f] Byzantine replicas, at
    most [k] down/recovering, at most one severed link or one tolerated
    site partition at a time, so at least one correct path and an
    ordering quorum always survive.

    The {!generate} sampler draws random schedules from a seed; the same
    seed always yields the same schedule, which is how a failing soak
    run is reproduced. {!validate} is the budget checker; the generator
    only emits schedules that validate, and hand-written over-budget
    schedules (used to prove the oracles are not vacuous) are exactly
    the ones it rejects. *)

(** The fault repertoire. Replica indices and overlay nodes coincide
    for replicas (node [r] hosts replica [r]). *)
type fault =
  | Link_flap of { a : int; b : int; down_us : int }
      (** overlay link severed, restored after [down_us] *)
  | Daemon_churn of { replica : int; down_us : int }
      (** the replica's overlay daemon goes down (the replica process
          keeps running, disconnected); models daemon crash/restart *)
  | Partition_site of { site : int; heal_after_us : int }
      (** a whole replica site is cut off the overlay, then healed *)
  | Loss_ramp of { a : int; b : int; peak : float; ramp_us : int; hold_us : int }
      (** gray failure: per-transmission loss climbs to [peak] over
          [ramp_us], holds for [hold_us], then clears *)
  | Latency_ramp of {
      a : int;
      b : int;
      peak_factor : float;
      ramp_us : int;
      hold_us : int;
    }  (** gray failure: propagation delay inflates to [peak_factor]x *)
  | Crash_restart of { replica : int; down_us : int }
      (** replica process crash; restart resynchronises by state
          transfer *)
  | Silence of { replica : int; duration_us : int }
      (** Byzantine: processes input, sends nothing *)
  | Clock_skew of { replica : int; delay_us : int; duration_us : int }
      (** the replica's proposal timers run [delay_us] late — the
          slowdown attack as produced by a skewed clock *)
  | Message_delay of { replica : int; factor : float; duration_us : int }
      (** every link adjacent to the replica delays by [factor]x *)

type event = { at_us : int; fault : fault }

type t = { horizon_us : int; events : event list }

(** Static description of the deployment the generator samples against. *)
type profile = {
  n : int;
  quorum : Bft.Quorum.t;
  sites : (int * int list) list;  (** replica site -> members *)
  wan_links : (int * int) list;  (** inter-site links between replicas *)
}

(** Concurrency budget. A schedule within the budget must be survivable:
    the chaos soak asserts that every oracle stays green under any
    generated schedule. *)
type budget = {
  max_byzantine : int;  (** concurrent Silence/Clock_skew, <= f *)
  max_down : int;  (** concurrent Crash_restart/Daemon_churn, <= k *)
  max_link_cuts : int;  (** concurrent Link_flap *)
  max_gray : int;  (** concurrent loss/latency/message-delay faults *)
  allow_partition : bool;
}

(** [budget_of_quorum q] is the paper's envelope: [f] Byzantine, [k]
    down, one link cut, partitions of tolerated sites allowed. *)
val budget_of_quorum : Bft.Quorum.t -> budget

(** [duration_us fault] is the fault's active span (injection to heal). *)
val duration_us : fault -> int

(** [validate ~profile ~budget t] checks that every fault heals within
    the horizon, concurrency stays within the budget, a partition never
    overlaps a Byzantine/down/link fault, no partitioned site exceeds
    [f + k] replicas, and no two concurrent faults share a target
    resource. *)
val validate :
  profile:profile -> budget:budget -> t -> (unit, string) result

(** [generate ~profile ~budget ~seed ~horizon_us] samples a random
    schedule that satisfies [validate]. Deterministic in [seed]. *)
val generate :
  profile:profile -> budget:budget -> seed:int64 -> horizon_us:int -> t

val pp_fault : Format.formatter -> fault -> unit
val pp : Format.formatter -> t -> unit
