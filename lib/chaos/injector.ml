let profile_of_system sys =
  let n = Spire.System.replica_count sys in
  let quorum = (Spire.System.config sys).Spire.System.quorum in
  let topo = Overlay.Net.topology (Spire.System.net sys) in
  let site_ids =
    List.sort_uniq compare
      (List.init n (fun r -> Spire.System.site_of_replica sys r))
  in
  let sites =
    List.map
      (fun s ->
        ( s,
          List.filter
            (fun r -> Spire.System.site_of_replica sys r = s)
            (List.init n Fun.id) ))
      site_ids
  in
  let wan_links =
    List.filter_map
      (fun l ->
        let a = l.Overlay.Topology.endpoint_a
        and b = l.Overlay.Topology.endpoint_b in
        if
          a < n && b < n
          && Overlay.Topology.site_of topo a <> Overlay.Topology.site_of topo b
        then Some (a, b)
        else None)
      (Overlay.Topology.links topo)
  in
  { Schedule.n; quorum; sites; wan_links }

let ramp_steps = 4

let at sys time_us f =
  ignore
    (Sim.Engine.schedule_at (Spire.System.engine sys) ~time_us f
      : Sim.Engine.timer)

let inject_fault sys ~start_us (fault : Schedule.fault) =
  let net = Spire.System.net sys in
  let ends_us = start_us + Schedule.duration_us fault in
  match fault with
  | Schedule.Link_flap { a; b; _ } ->
    at sys start_us (fun () -> Overlay.Net.kill_link net a b);
    at sys ends_us (fun () -> Overlay.Net.restore_link net a b)
  | Schedule.Daemon_churn { replica; _ } ->
    at sys start_us (fun () ->
        Overlay.Net.kill_node net (Spire.System.node_of_replica sys replica));
    at sys ends_us (fun () ->
        Overlay.Net.restore_node net (Spire.System.node_of_replica sys replica))
  | Schedule.Partition_site { site; _ } ->
    at sys start_us (fun () -> Spire.System.isolate_site sys site);
    at sys ends_us (fun () -> Spire.System.reconnect_site sys site)
  | Schedule.Loss_ramp { a; b; peak; ramp_us; _ } ->
    for i = 1 to ramp_steps do
      at sys
        (start_us + (i * ramp_us / ramp_steps))
        (fun () ->
          Overlay.Net.set_loss_probability net a b
            (peak *. float_of_int i /. float_of_int ramp_steps))
    done;
    at sys ends_us (fun () -> Overlay.Net.set_loss_probability net a b 0.)
  | Schedule.Latency_ramp { a; b; peak_factor; ramp_us; _ } ->
    for i = 1 to ramp_steps do
      at sys
        (start_us + (i * ramp_us / ramp_steps))
        (fun () ->
          let frac = float_of_int i /. float_of_int ramp_steps in
          Overlay.Net.set_latency_factor net a b
            (1. +. ((peak_factor -. 1.) *. frac)))
    done;
    at sys ends_us (fun () -> Overlay.Net.set_latency_factor net a b 1.)
  | Schedule.Crash_restart { replica; _ } ->
    at sys start_us (fun () -> Spire.System.crash_replica sys replica);
    at sys ends_us (fun () -> Spire.System.restore_replica sys replica)
  | Schedule.Silence { replica; _ } ->
    at sys start_us (fun () ->
        (Spire.System.faults sys replica).Bft.Faults.silent <- true);
    at sys ends_us (fun () ->
        (Spire.System.faults sys replica).Bft.Faults.silent <- false)
  | Schedule.Clock_skew { replica; delay_us; _ } ->
    at sys start_us (fun () ->
        (Spire.System.faults sys replica).Bft.Faults.proposal_delay_us <-
          delay_us);
    at sys ends_us (fun () ->
        (Spire.System.faults sys replica).Bft.Faults.proposal_delay_us <- 0)
  | Schedule.Message_delay { replica; factor; _ } ->
    let node = Spire.System.node_of_replica sys replica in
    let topo = Overlay.Net.topology net in
    let set f =
      List.iter
        (fun w -> Overlay.Net.set_latency_factor net node w f)
        (Overlay.Topology.neighbors topo node)
    in
    at sys start_us (fun () -> set factor);
    at sys ends_us (fun () -> set 1.)

let apply sys ~offset_us (schedule : Schedule.t) =
  List.iter
    (fun ev ->
      inject_fault sys ~start_us:(offset_us + ev.Schedule.at_us)
        ev.Schedule.fault)
    schedule.Schedule.events
