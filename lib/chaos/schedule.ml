type fault =
  | Link_flap of { a : int; b : int; down_us : int }
  | Daemon_churn of { replica : int; down_us : int }
  | Partition_site of { site : int; heal_after_us : int }
  | Loss_ramp of { a : int; b : int; peak : float; ramp_us : int; hold_us : int }
  | Latency_ramp of {
      a : int;
      b : int;
      peak_factor : float;
      ramp_us : int;
      hold_us : int;
    }
  | Crash_restart of { replica : int; down_us : int }
  | Silence of { replica : int; duration_us : int }
  | Clock_skew of { replica : int; delay_us : int; duration_us : int }
  | Message_delay of { replica : int; factor : float; duration_us : int }

type event = { at_us : int; fault : fault }
type t = { horizon_us : int; events : event list }

type profile = {
  n : int;
  quorum : Bft.Quorum.t;
  sites : (int * int list) list;
  wan_links : (int * int) list;
}

type budget = {
  max_byzantine : int;
  max_down : int;
  max_link_cuts : int;
  max_gray : int;
  allow_partition : bool;
}

let budget_of_quorum (q : Bft.Quorum.t) =
  {
    max_byzantine = q.Bft.Quorum.f;
    max_down = q.Bft.Quorum.k;
    max_link_cuts = 1;
    max_gray = 3;
    allow_partition = true;
  }

let duration_us = function
  | Link_flap { down_us; _ } -> down_us
  | Daemon_churn { down_us; _ } -> down_us
  | Partition_site { heal_after_us; _ } -> heal_after_us
  | Loss_ramp { ramp_us; hold_us; _ } -> ramp_us + hold_us
  | Latency_ramp { ramp_us; hold_us; _ } -> ramp_us + hold_us
  | Crash_restart { down_us; _ } -> down_us
  | Silence { duration_us; _ } -> duration_us
  | Clock_skew { duration_us; _ } -> duration_us
  | Message_delay { duration_us; _ } -> duration_us

type category = Byzantine | Down | Link_cut | Gray | Partition

let category = function
  | Silence _ | Clock_skew _ -> Byzantine
  | Crash_restart _ | Daemon_churn _ -> Down
  | Link_flap _ -> Link_cut
  | Loss_ramp _ | Latency_ramp _ | Message_delay _ -> Gray
  | Partition_site _ -> Partition

(* Resources a fault occupies while active; two concurrent faults must
   not share a resource (last heal would clobber the other's state). *)
type target = Replica of int | Link of int * int | Site of int

let norm_link a b = if a < b then Link (a, b) else Link (b, a)

let targets profile = function
  | Link_flap { a; b; _ } -> [ norm_link a b ]
  | Daemon_churn { replica; _ } -> [ Replica replica ]
  | Partition_site { site; _ } -> (
    Site site
    ::
    (match List.assoc_opt site profile.sites with
    | Some members -> List.map (fun r -> Replica r) members
    | None -> []))
  | Loss_ramp { a; b; _ } | Latency_ramp { a; b; _ } -> [ norm_link a b ]
  | Crash_restart { replica; _ }
  | Silence { replica; _ }
  | Clock_skew { replica; _ } ->
    [ Replica replica ]
  | Message_delay { replica; factor = _; duration_us = _ } ->
    Replica replica
    :: List.filter_map
         (fun (a, b) ->
           if a = replica || b = replica then Some (norm_link a b) else None)
         profile.wan_links

let overlaps (s1, e1) (s2, e2) = s1 < e2 && s2 < e1

let interval ev = (ev.at_us, ev.at_us + duration_us ev.fault)

(* Count how many of [evs] are active at instant [t]. *)
let active_at evs cat t =
  List.length
    (List.filter
       (fun ev ->
         category ev.fault = cat
         &&
         let s, e = interval ev in
         s <= t && t < e)
       evs)

let validate ~profile ~budget t =
  let err fmt = Format.kasprintf (fun m -> Error m) fmt in
  let events = t.events in
  let check_one ev =
    let s, e = interval ev in
    if s < 0 then err "event at %dus starts before 0" ev.at_us
    else if e > t.horizon_us then
      err "fault at %dus heals at %dus, after the %dus horizon" ev.at_us e
        t.horizon_us
    else if duration_us ev.fault <= 0 then
      err "fault at %dus has non-positive duration" ev.at_us
    else
      match ev.fault with
      | Partition_site { site; _ } -> (
        if not budget.allow_partition then
          err "partition at %dus but budget forbids partitions" ev.at_us
        else
          match List.assoc_opt site profile.sites with
          | None -> err "partition of unknown replica site %d" site
          | Some members ->
            let q = profile.quorum in
            if List.length members > q.Bft.Quorum.f + q.Bft.Quorum.k then
              err
                "partition of site %d (%d replicas) exceeds the f+k=%d \
                 unavailability budget"
                site (List.length members)
                (q.Bft.Quorum.f + q.Bft.Quorum.k)
            else Ok ())
      | Loss_ramp { peak; _ } ->
        if peak < 0. || peak >= 1. then
          err "loss ramp peak %.2f out of [0,1)" peak
        else Ok ()
      | Latency_ramp { peak_factor; _ } ->
        if peak_factor < 1. then err "latency ramp factor %.2f < 1" peak_factor
        else Ok ()
      | Message_delay { factor; _ } ->
        if factor < 1. then err "message delay factor %.2f < 1" factor
        else Ok ()
      | Link_flap _ | Daemon_churn _ | Crash_restart _ | Silence _
      | Clock_skew _ ->
        Ok ()
  in
  let rec first_error = function
    | [] -> Ok ()
    | ev :: rest -> (
      match check_one ev with Ok () -> first_error rest | Error _ as e -> e)
  in
  match first_error events with
  | Error _ as e -> e
  | Ok () ->
    (* Concurrency budgets, sampled at every fault start. *)
    let starts = List.map (fun ev -> ev.at_us) events in
    let over cat limit name =
      List.find_map
        (fun s ->
          let n = active_at events cat s in
          if n > limit then Some (s, n, name) else None)
        starts
    in
    let budget_violation =
      List.find_map
        (fun x -> x)
        [
          over Byzantine budget.max_byzantine "Byzantine replicas";
          over Down budget.max_down "down/recovering replicas";
          over Link_cut budget.max_link_cuts "severed links";
          over Gray budget.max_gray "gray failures";
          over Partition 1 "site partitions";
        ]
    in
    (match budget_violation with
    | Some (s, n, name) ->
      err "budget exceeded at %dus: %d concurrent %s" s n name
    | None ->
      (* A partition is exclusive with every non-gray fault: isolating
         a tolerated site already consumes the whole unavailability
         budget, and a surviving correct path must remain. *)
      let partitions =
        List.filter (fun ev -> category ev.fault = Partition) events
      in
      let hard =
        List.filter
          (fun ev ->
            match category ev.fault with
            | Byzantine | Down | Link_cut -> true
            | Gray | Partition -> false)
          events
      in
      let clash =
        List.find_map
          (fun p ->
            List.find_map
              (fun h ->
                if overlaps (interval p) (interval h) then Some (p, h)
                else None)
              hard)
          partitions
      in
      (match clash with
      | Some (p, _) ->
        err
          "partition at %dus overlaps a Byzantine/down/link fault: the \
           combination exceeds the tolerated simultaneous-fault budget"
          p.at_us
      | None ->
        (* No two concurrent faults may share a target resource. *)
        let rec pairwise = function
          | [] -> Ok ()
          | ev :: rest ->
            let tv = targets profile ev.fault in
            let conflict =
              List.find_opt
                (fun other ->
                  overlaps (interval ev) (interval other)
                  && List.exists
                       (fun tg -> List.mem tg (targets profile other.fault))
                       tv)
                rest
            in
            (match conflict with
            | Some other ->
              err "faults at %dus and %dus target the same resource" ev.at_us
                other.at_us
            | None -> pairwise rest)
        in
        pairwise events))

(* ------------------------------------------------------------------ *)
(* Pretty printing: a schedule must be readable in a failure report.   *)

let pp_fault ppf = function
  | Link_flap { a; b; down_us } ->
    Format.fprintf ppf "link-flap %d-%d down %dms" a b (down_us / 1000)
  | Daemon_churn { replica; down_us } ->
    Format.fprintf ppf "daemon-churn replica %d down %dms" replica
      (down_us / 1000)
  | Partition_site { site; heal_after_us } ->
    Format.fprintf ppf "partition site %d heal after %dms" site
      (heal_after_us / 1000)
  | Loss_ramp { a; b; peak; ramp_us; hold_us } ->
    Format.fprintf ppf "loss-ramp %d-%d to %.0f%% over %dms hold %dms" a b
      (100. *. peak) (ramp_us / 1000) (hold_us / 1000)
  | Latency_ramp { a; b; peak_factor; ramp_us; hold_us } ->
    Format.fprintf ppf "latency-ramp %d-%d to %.1fx over %dms hold %dms" a b
      peak_factor (ramp_us / 1000) (hold_us / 1000)
  | Crash_restart { replica; down_us } ->
    Format.fprintf ppf "crash-restart replica %d down %dms" replica
      (down_us / 1000)
  | Silence { replica; duration_us } ->
    Format.fprintf ppf "silence replica %d for %dms" replica
      (duration_us / 1000)
  | Clock_skew { replica; delay_us; duration_us } ->
    Format.fprintf ppf "clock-skew replica %d +%dms for %dms" replica
      (delay_us / 1000) (duration_us / 1000)
  | Message_delay { replica; factor; duration_us } ->
    Format.fprintf ppf "message-delay replica %d %.1fx for %dms" replica factor
      (duration_us / 1000)

let pp ppf t =
  Format.fprintf ppf "@[<v>chaos schedule (horizon %dms, %d faults):"
    (t.horizon_us / 1000)
    (List.length t.events);
  List.iter
    (fun ev ->
      Format.fprintf ppf "@,  t=%6dms  %a" (ev.at_us / 1000) pp_fault ev.fault)
    t.events;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Generator: random-but-reproducible schedules within a budget.       *)

let generate ~profile ~budget ~seed ~horizon_us =
  let rng = Sim.Rng.create seed in
  let replicas = Array.init profile.n Fun.id in
  let wan = Array.of_list profile.wan_links in
  let partitionable =
    List.filter
      (fun (_, members) ->
        List.length members
        <= profile.quorum.Bft.Quorum.f + profile.quorum.Bft.Quorum.k)
      profile.sites
    |> Array.of_list
  in
  let range lo hi = lo + Sim.Rng.int rng (max 1 (hi - lo)) in
  let sample_fault () =
    match Sim.Rng.int rng 9 with
    | 0 when Array.length wan > 0 ->
      let a, b = Sim.Rng.pick rng wan in
      Some (Link_flap { a; b; down_us = range 200_000 1_000_000 })
    | 1 ->
      Some
        (Daemon_churn
           {
             replica = Sim.Rng.pick rng replicas;
             down_us = range 200_000 800_000;
           })
    | 2 when budget.allow_partition && Array.length partitionable > 0 ->
      let site, _ = Sim.Rng.pick rng partitionable in
      Some (Partition_site { site; heal_after_us = range 300_000 1_000_000 })
    | 3 when Array.length wan > 0 ->
      let a, b = Sim.Rng.pick rng wan in
      Some
        (Loss_ramp
           {
             a;
             b;
             peak = 0.05 +. Sim.Rng.float rng 0.25;
             ramp_us = range 200_000 500_000;
             hold_us = range 200_000 1_000_000;
           })
    | 4 when Array.length wan > 0 ->
      let a, b = Sim.Rng.pick rng wan in
      Some
        (Latency_ramp
           {
             a;
             b;
             peak_factor = 2. +. Sim.Rng.float rng 8.;
             ramp_us = range 200_000 500_000;
             hold_us = range 200_000 1_000_000;
           })
    | 5 ->
      Some
        (Crash_restart
           {
             replica = Sim.Rng.pick rng replicas;
             down_us = range 300_000 1_000_000;
           })
    | 6 ->
      Some
        (Silence
           {
             replica = Sim.Rng.pick rng replicas;
             duration_us = range 300_000 1_000_000;
           })
    | 7 ->
      Some
        (Clock_skew
           {
             replica = Sim.Rng.pick rng replicas;
             delay_us = range 50_000 300_000;
             duration_us = range 300_000 1_000_000;
           })
    | _ ->
      Some
        (Message_delay
           {
             replica = Sim.Rng.pick rng replicas;
             factor = 2. +. Sim.Rng.float rng 6.;
             duration_us = range 300_000 1_000_000;
           })
  in
  let desired = 3 + Sim.Rng.int rng 5 in
  let events = ref [] in
  let attempts = ref (desired * 8) in
  while List.length !events < desired && !attempts > 0 do
    decr attempts;
    match sample_fault () with
    | None -> ()
    | Some fault ->
      let dur = duration_us fault in
      if dur < horizon_us then begin
        let at_us = Sim.Rng.int rng (horizon_us - dur) in
        let candidate = { horizon_us; events = { at_us; fault } :: !events } in
        match validate ~profile ~budget candidate with
        | Ok () -> events := candidate.events
        | Error _ -> ()
      end
  done;
  {
    horizon_us;
    events = List.sort (fun a b -> compare a.at_us b.at_us) !events;
  }
